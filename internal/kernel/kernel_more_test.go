package kernel

import (
	"bytes"
	"strings"
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// TestFileWriteAndSymlink covers the filesystem write paths: create a file,
// write, symlink it, read the link back.
func TestFileWriteAndSymlink(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		// open("/out", create)
		b.LeaData(isa.R1, "out_path").MovRI(isa.R2, 1)
		emitSyscall(b, SysOpen)
		b.MovRR(isa.R6, isa.R0)
		// write(fd, payload, 5)
		b.MovRR(isa.R1, isa.R6).LeaData(isa.R2, "payload").MovRI(isa.R3, 5)
		emitSyscall(b, SysWrite)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysClose)
		// symlink("/out", "/link")
		b.LeaData(isa.R1, "out_path").LeaData(isa.R2, "link_path")
		emitSyscall(b, SysSymlink)
		// open("/link") + read back
		b.LeaData(isa.R1, "link_path").MovRI(isa.R2, 0)
		emitSyscall(b, SysOpen)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).LeaData(isa.R2, "buf").MovRI(isa.R3, 16)
		emitSyscall(b, SysRead)
		b.MovRR(isa.R1, isa.R0) // bytes read through the link
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("out_path", []byte("/out\x00"))
		b.Data("link_path", []byte("/link\x00"))
		b.Data("payload", []byte("hello"))
		b.BSS("buf", 16)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 5 {
		t.Fatalf("read via symlink = %d, want 5", p.ExitCode)
	}
	contents, ok := k.FileContents("/link")
	if !ok || !bytes.Equal(contents, []byte("hello")) {
		t.Errorf("link contents = %q %v", contents, ok)
	}
}

// TestFileWriteEFAULT covers the file-write bad-pointer path.
func TestFileWriteEFAULT(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaData(isa.R1, "out_path").MovRI(isa.R2, 1)
		emitSyscall(b, SysOpen)
		b.MovRR(isa.R1, isa.R0).MovRI(isa.R2, 0xbad0000).MovRI(isa.R3, 8)
		emitSyscall(b, SysWrite)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("out_path", []byte("/out\x00"))
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("write ret = %d, want -EFAULT", int64(p.ExitCode))
	}
}

// TestSymlinkEFAULTSecondArg covers symlink's second pointer argument.
func TestSymlinkEFAULTSecondArg(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaData(isa.R1, "path").MovRI(isa.R2, 0xbad0000)
		emitSyscall(b, SysSymlink)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("path", []byte("/x\x00"))
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("symlink ret = %d, want -EFAULT", int64(p.ExitCode))
	}
}

// TestConnectValidPointer covers connect's non-EFAULT path (refused).
func TestConnectValidPointer(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R1, isa.R0).LeaData(isa.R2, "addr")
		emitSyscall(b, SysConnect)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("addr", 16)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EINVAL {
		t.Errorf("connect ret = %d, want -EINVAL (refused)", int64(p.ExitCode))
	}
}

// TestRecvAndSendmsgSuccess covers the recv and sendmsg happy paths.
func TestRecvAndSendmsgSuccess(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		// recv(conn, buf, 16, 0)
		b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRI(isa.R3, 16).MovRI(isa.R4, 0)
		emitSyscall(b, SysRecv)
		b.MovRR(isa.R8, isa.R0)
		// sendmsg(conn, hdr) echoing what was received
		b.LeaData(isa.R5, "hdr").
			LeaData(isa.R4, "buf").
			Store(8, isa.R5, 0, isa.R4).
			Store(8, isa.R5, 8, isa.R8).
			MovRR(isa.R1, isa.R7).
			MovRR(isa.R2, isa.R5)
		emitSyscall(b, SysSendmsg)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("buf", 16)
		b.BSS("hdr", 16)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("ping"))
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 4 {
		t.Fatalf("sendmsg ret = %d, want 4", int64(p.ExitCode))
	}
	if got := cc.Recv(); !bytes.Equal(got, []byte("ping")) {
		t.Errorf("echo = %q", got)
	}
	if cc.ClosedByServer() {
		t.Error("server should not have closed the connection")
	}
	if cc.Label() == 0 {
		t.Error("connection has no taint label")
	}
}

// TestSendToClosedConnection covers streamWrite's closed path.
func TestSendToClosedConnection(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		// Wait for EOF, then try to send.
		b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRI(isa.R3, 8).MovRI(isa.R4, 0)
		emitSyscall(b, SysRecv)
		b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRI(isa.R3, 4).MovRI(isa.R4, 0)
		emitSyscall(b, SysSend)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("buf", 8)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	cc.Close()
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EBADF {
		t.Errorf("send after client close = %d, want -EBADF", int64(p.ExitCode))
	}
}

// TestEpollCtlDelAndMod covers the remaining ctl ops.
func TestEpollCtlDelAndMod(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		emitSyscall(b, SysEpollCreate)
		b.MovRR(isa.R9, isa.R0)
		// add, mod, del, then a zero-timeout wait (no interest → 0).
		b.LeaData(isa.R4, "ev").MovRI(isa.R5, EpollIn).Store(4, isa.R4, 0, isa.R5).Store(8, isa.R4, 8, isa.R6)
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, EpollCtlAdd).MovRR(isa.R3, isa.R6)
		emitSyscall(b, SysEpollCtl)
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, EpollCtlMod).MovRR(isa.R3, isa.R6).LeaData(isa.R4, "ev")
		emitSyscall(b, SysEpollCtl)
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, EpollCtlDel).MovRR(isa.R3, isa.R6)
		emitSyscall(b, SysEpollCtl)
		b.MovRR(isa.R1, isa.R9).LeaData(isa.R2, "events").MovRI(isa.R3, 4).MovRI(isa.R4, 0)
		emitSyscall(b, SysEpollWait)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("ev", 16)
		b.BSS("events", 64)
	})
	// A pending connection would be ready — but interest was deleted.
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Run(10_000)
	if _, err := k.Connect(80); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 0 {
		t.Errorf("epoll_wait after del = %d events, want 0", p.ExitCode)
	}
}

// TestEpollCtlErrors covers bad ops and descriptors.
func TestEpollCtlErrors(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysEpollCreate)
		b.MovRR(isa.R9, isa.R0)
		// ctl with unknown op
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, 99).MovRI(isa.R3, 3).LeaData(isa.R4, "ev")
		emitSyscall(b, SysEpollCtl)
		b.MovRR(isa.R10, isa.R0)
		// ctl add for nonexistent fd
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, EpollCtlAdd).MovRI(isa.R3, 77).LeaData(isa.R4, "ev")
		emitSyscall(b, SysEpollCtl)
		b.MovRR(isa.R11, isa.R0)
		// wait with maxevents 0
		b.MovRR(isa.R1, isa.R9).LeaData(isa.R2, "ev").MovRI(isa.R3, 0).MovRI(isa.R4, 0)
		emitSyscall(b, SysEpollWait)
		b.MovRR(isa.R12, isa.R0)
		// wait on non-epoll fd
		b.MovRI(isa.R1, 1).LeaData(isa.R2, "ev").MovRI(isa.R3, 1).MovRI(isa.R4, 0)
		emitSyscall(b, SysEpollWait)
		b.MovRR(isa.R13, isa.R0)
		// pack outcomes
		b.MovRI(isa.R1, 0)
		b.MovRI(isa.R5, uint64(0)).SubRI(isa.R5, int32(EINVAL))
		b.CmpRR(isa.R10, isa.R5).Jnz("c1").OrRI(isa.R1, 1).Label("c1")
		b.MovRI(isa.R5, uint64(0)).SubRI(isa.R5, int32(EBADF))
		b.CmpRR(isa.R11, isa.R5).Jnz("c2").OrRI(isa.R1, 2).Label("c2")
		b.MovRI(isa.R5, uint64(0)).SubRI(isa.R5, int32(EINVAL))
		b.CmpRR(isa.R12, isa.R5).Jnz("c3").OrRI(isa.R1, 4).Label("c3")
		b.MovRI(isa.R5, uint64(0)).SubRI(isa.R5, int32(EBADF))
		b.CmpRR(isa.R13, isa.R5).Jnz("c4").OrRI(isa.R1, 8).Label("c4")
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("ev", 16)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 15 {
		t.Errorf("epoll error checks = %04b, want 1111", p.ExitCode)
	}
}

// TestSigactionInvalidSignal covers the EINVAL path.
func TestSigactionInvalidSignal(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.MovRI(isa.R1, 999).MovRI(isa.R2, 0x1000)
		emitSyscall(b, SysSigaction)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EINVAL {
		t.Errorf("sigaction(999) = %d, want -EINVAL", int64(p.ExitCode))
	}
}

// TestRecvfromSrcAddrSuccess covers recvfrom's optional source-address path.
func TestRecvfromSrcAddrSuccess(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R1, isa.R0).LeaData(isa.R2, "buf").MovRI(isa.R3, 8).LeaData(isa.R4, "src")
		emitSyscall(b, SysRecvfrom)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("buf", 8)
		b.BSS("src", 16)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("dgram"))
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 5 {
		t.Errorf("recvfrom = %d, want 5", p.ExitCode)
	}
}

func TestKernelString(t *testing.T) {
	k := New()
	if s := k.String(); !strings.Contains(s, "kernel{") {
		t.Errorf("String = %q", s)
	}
}

// TestBlockingSyscallInsideFilterFailsFast: a thread evaluating an SEH
// filter must never be parked by the kernel — the blocking accept inside
// the filter resolves immediately instead of deadlocking exception
// dispatch, and the filter runs to completion.
func TestBlockingSyscallInsideFilterFailsFast(t *testing.T) {
	b := asm.NewBuilder("mix.exe", bin.KindExecutable)
	b.Func("main").Entry("main")
	// Set up a listener with an empty backlog.
	emitSyscall(b, SysSocket)
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
	emitSyscall(b, SysBind)
	b.MovRR(isa.R1, isa.R6)
	emitSyscall(b, SysListen)
	b.LeaData(isa.R12, "lfd").Store(8, isa.R12, 0, isa.R6)
	// Fault inside a guarded region whose filter blocks.
	b.MovRI(isa.R1, 0xbad0000)
	b.Label("try")
	b.Load(8, isa.R0, isa.R1, 0)
	b.Label("try_end")
	b.MovRI(isa.R1, 1)
	emitSyscall(b, SysExit)
	b.Label("handler")
	b.MovRI(isa.R1, 2)
	emitSyscall(b, SysExit)
	b.EndFunc()
	// The filter performs a *blocking* accept before accepting the
	// exception; the kernel must fail the call rather than park the
	// thread mid-dispatch.
	b.Func("filter")
	b.LeaData(isa.R4, "lfd").Load(8, isa.R1, isa.R4, 0).MovRI(isa.R2, 0)
	emitSyscall(b, SysAccept)
	b.MovRI(isa.R0, 1) // accept the exception regardless
	b.Ret()
	b.EndFunc()
	b.Guard("main", "try", "try_end", "filter", "handler")
	b.BSS("lfd", 8)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Windows exception model with the Linux-model kernel attached: the
	// combination that makes a blocking filter expressible.
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 77})
	k := New()
	k.Attach(p)
	if _, err := p.Start(); err == nil {
		t.Fatal("start before load should fail")
	}
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	res := p.RunUntilIdle(1_000_000)
	if res.State != vm.ProcExited || p.ExitCode != 2 {
		t.Fatalf("state=%v exit=%d crash=%v, want filter-accepted exit 2",
			res.State, p.ExitCode, p.Crash)
	}
}
