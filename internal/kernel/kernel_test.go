package kernel

import (
	"bytes"
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// negErr encodes -errno as a register value at runtime (avoids constant
// conversion overflow).
func negErr(e uint64) uint64 { return -e }

// buildLinuxProc assembles the image and attaches a fresh kernel.
func buildLinuxProc(t *testing.T, fill func(b *asm.Builder)) (*vm.Process, *Kernel) {
	t.Helper()
	b := asm.NewBuilder("srv.exe", bin.KindExecutable)
	fill(b)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformLinux, Seed: 77})
	k := New()
	k.Attach(p)
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	return p, k
}

// emitSyscall emits: R0=num, syscall. Args must already be in R1..R5.
func emitSyscall(b *asm.Builder, num uint64) *asm.Builder {
	return b.MovRI(isa.R0, num).Syscall()
}

// echoServer builds a single-connection echo server on port 80:
// socket/bind/listen/accept, then loop { n=read(fd,buf,64); if n<=0 exit;
// write(fd,buf,n) }.
func echoServer(b *asm.Builder) {
	b.Func("main").Entry("main")
	emitSyscall(b, SysSocket) // R0 = sockfd
	b.MovRR(isa.R6, isa.R0)   // R6 = sockfd
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
	emitSyscall(b, SysBind)
	b.MovRR(isa.R1, isa.R6)
	emitSyscall(b, SysListen)
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
	emitSyscall(b, SysAccept)
	b.MovRR(isa.R7, isa.R0) // R7 = connfd
	b.Label("loop")
	b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRI(isa.R3, 64)
	emitSyscall(b, SysRead)
	b.MovRR(isa.R8, isa.R0) // n
	b.CmpRI(isa.R8, 0)
	b.Jle("done")
	b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRR(isa.R3, isa.R8)
	emitSyscall(b, SysWrite)
	b.Jmp("loop")
	b.Label("done")
	b.MovRI(isa.R1, 0)
	emitSyscall(b, SysExit)
	b.EndFunc()
	b.BSS("buf", 64)
}

func TestEchoServer(t *testing.T) {
	p, k := buildLinuxProc(t, echoServer)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	res := p.RunUntilIdle(1_000_000)
	if res.State != vm.ProcIdle {
		t.Fatalf("server state = %v (crash=%v), want idle in accept", res.State, p.Crash)
	}

	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000) // accept completes, blocks in read

	cc.Send([]byte("hello"))
	p.RunUntilIdle(1_000_000)
	if got := cc.Recv(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("echo = %q, want hello", got)
	}

	cc.Send([]byte("again"))
	p.RunUntilIdle(1_000_000)
	if got := cc.Recv(); !bytes.Equal(got, []byte("again")) {
		t.Errorf("echo 2 = %q", got)
	}

	cc.Close()
	p.RunUntilIdle(1_000_000)
	if p.State != vm.ProcExited {
		t.Errorf("server should exit on EOF, state = %v", p.State)
	}
}

func TestConnectToMissingPort(t *testing.T) {
	_, k := buildLinuxProc(t, echoServer)
	if _, err := k.Connect(9999); err == nil {
		t.Error("Connect to missing port should fail")
	}
}

func TestReadEFAULTOnCorruptedPointer(t *testing.T) {
	// A server whose read buffer pointer lives in memory; corrupting it to
	// an unmapped address must make read return -EFAULT without a crash.
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		b.Label("loop")
		// Load the buffer pointer from the connection struct each
		// iteration (like Nginx's ngx_buf_t).
		b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "bufptr").Load(8, isa.R2, isa.R2, 0).MovRI(isa.R3, 64)
		emitSyscall(b, SysRead)
		b.CmpRI(isa.R0, 0)
		b.Jg("ok")
		// Error path: close connection, write marker, exit gracefully.
		b.MovRR(isa.R1, isa.R7)
		emitSyscall(b, SysClose)
		b.MovRI(isa.R1, 42)
		emitSyscall(b, SysExit)
		b.Label("ok")
		b.Jmp("loop")
		b.EndFunc()
		b.DataPtr("bufptr", "buf")
		b.BSS("buf", 64)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)

	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("x"))
	p.RunUntilIdle(1_000_000) // one successful read; blocks on next

	// Corrupt the buffer pointer to an unmapped address.
	mod := p.Modules()[0]
	var bufptrOff uint32
	for _, r := range mod.Image.Relocs {
		bufptrOff = r.Offset
	}
	if err := p.AS.WriteUint(mod.VA(bufptrOff), 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("y"))
	p.RunUntilIdle(1_000_000)

	if p.State != vm.ProcExited || p.ExitCode != 42 {
		t.Errorf("state=%v exit=%d crash=%v; want graceful EFAULT path (exit 42)",
			p.State, p.ExitCode, p.Crash)
	}
	if p.Crash != nil {
		t.Errorf("server crashed: %v", p.Crash)
	}
}

func TestEpollWaitServesAndTimesOut(t *testing.T) {
	// epoll server: registers the listener, waits with a 1-second timeout
	// in a loop, counts timeouts at "timeouts"; on a ready listener it
	// accepts and echoes one message.
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		emitSyscall(b, SysEpollCreate)
		b.MovRR(isa.R9, isa.R0) // epfd
		// event struct: events=EPOLLIN, data=listener fd
		b.LeaData(isa.R4, "ev").MovRI(isa.R5, EpollIn).Store(4, isa.R4, 0, isa.R5)
		b.Store(8, isa.R4, 8, isa.R6)
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, EpollCtlAdd).MovRR(isa.R3, isa.R6).MovRR(isa.R4, isa.R4)
		emitSyscall(b, SysEpollCtl)
		b.Label("wait")
		b.MovRR(isa.R1, isa.R9).LeaData(isa.R2, "events").MovRI(isa.R3, 4).MovRI(isa.R4, TicksPerSecond)
		emitSyscall(b, SysEpollWait)
		b.CmpRI(isa.R0, 0)
		b.Jg("ready")
		// timeout: increment counter, loop (max 3 timeouts then exit)
		b.LeaData(isa.R2, "timeouts").Load(8, isa.R3, isa.R2, 0).AddRI(isa.R3, 1).Store(8, isa.R2, 0, isa.R3)
		b.CmpRI(isa.R3, 3)
		b.Jge("quit")
		b.Jmp("wait")
		b.Label("ready")
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRI(isa.R3, 64)
		emitSyscall(b, SysRead)
		b.MovRR(isa.R8, isa.R0)
		b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRR(isa.R3, isa.R8)
		emitSyscall(b, SysWrite)
		b.Jmp("wait")
		b.Label("quit")
		b.MovRI(isa.R1, 7)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("ev", 16)
		b.BSS("events", 64)
		b.BSS("buf", 64)
		b.BSS("timeouts", 8)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it set up and block in epoll_wait.
	p.Run(100_000)

	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("ping"))
	p.Run(200_000)
	if got := cc.Recv(); !bytes.Equal(got, []byte("ping")) {
		t.Fatalf("epoll echo = %q (state=%v crash=%v)", got, p.State, p.Crash)
	}

	// With no more traffic, three 1-second timeouts must elapse on the
	// virtual clock and the server exits with code 7.
	p.RunUntilIdle(10 * TicksPerSecond)
	if p.State != vm.ProcExited || p.ExitCode != 7 {
		t.Errorf("state=%v exit=%d, want timeout-driven exit 7", p.State, p.ExitCode)
	}
}

func TestEpollWaitEFAULTDoesNotBlock(t *testing.T) {
	// When the events pointer is invalid, epoll_wait must return -EFAULT
	// immediately (tight failing loop — the Cherokee §VI-D behaviour),
	// not consume its timeout.
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		emitSyscall(b, SysEpollCreate)
		b.MovRR(isa.R9, isa.R0)
		// 1000 failing epoll_wait calls with bad pointer, then exit.
		b.MovRI(isa.R10, 1000)
		b.Label("loop")
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, 0xdead0000).MovRI(isa.R3, 4).MovRI(isa.R4, TicksPerSecond)
		emitSyscall(b, SysEpollWait)
		b.SubRI(isa.R10, 1)
		b.TestRR(isa.R10, isa.R10)
		b.Jnz("loop")
		b.MovRR(isa.R1, isa.R0) // last ret
		emitSyscall(b, SysExit)
		b.EndFunc()
	})
	_ = k
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	res := p.RunUntilIdle(100 * TicksPerSecond)
	if p.State != vm.ProcExited {
		t.Fatalf("state = %v", p.State)
	}
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("last epoll_wait ret = %d, want -EFAULT", int64(p.ExitCode))
	}
	// 1000 spins must cost far less than 1000 virtual seconds.
	if res.Ticks > 10*TicksPerSecond {
		t.Errorf("EFAULT loop consumed %d ticks; it must not block", res.Ticks)
	}
}

func TestPathSyscalls(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		// access("/etc/conf") → expect 0 (exists)
		b.LeaData(isa.R1, "path")
		emitSyscall(b, SysAccess)
		b.MovRR(isa.R10, isa.R0)
		// unlink it
		b.LeaData(isa.R1, "path")
		emitSyscall(b, SysUnlink)
		// access again → -ENOENT
		b.LeaData(isa.R1, "path")
		emitSyscall(b, SysAccess)
		b.MovRR(isa.R11, isa.R0)
		// access with bad pointer → -EFAULT
		b.MovRI(isa.R1, 0xbad0000)
		emitSyscall(b, SysAccess)
		b.MovRR(isa.R12, isa.R0)
		// Pack results: exit code = (r10==0) + (r11==-ENOENT)<<1 + (r12==-EFAULT)<<2
		b.MovRI(isa.R1, 0)
		b.CmpRI(isa.R10, 0)
		b.Jnz("c2")
		b.OrRI(isa.R1, 1)
		b.Label("c2")
		b.MovRI(isa.R5, negErr(ENOENT))
		b.CmpRR(isa.R11, isa.R5)
		b.Jnz("c3")
		b.OrRI(isa.R1, 2)
		b.Label("c3")
		b.MovRI(isa.R5, negErr(EFAULT))
		b.CmpRR(isa.R12, isa.R5)
		b.Jnz("c4")
		b.OrRI(isa.R1, 4)
		b.Label("c4")
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("path", []byte("/etc/conf\x00"))
	})
	k.AddFile("/etc/conf", []byte("config"))
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 7 {
		t.Errorf("path syscall checks = %03b, want 111", p.ExitCode)
	}
}

func TestOpenReadWriteFile(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaData(isa.R1, "path").MovRI(isa.R2, 0)
		emitSyscall(b, SysOpen)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).LeaData(isa.R2, "buf").MovRI(isa.R3, 16)
		emitSyscall(b, SysRead)
		b.MovRR(isa.R1, isa.R0) // bytes read
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("path", []byte("/data\x00"))
		b.BSS("buf", 16)
	})
	k.AddFile("/data", []byte("sixteen bytes!!!"))
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != 16 {
		t.Errorf("read = %d, want 16", p.ExitCode)
	}
}

func TestOpenMissingFileENOENT(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaData(isa.R1, "path").MovRI(isa.R2, 0)
		emitSyscall(b, SysOpen)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("path", []byte("/missing\x00"))
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -ENOENT {
		t.Errorf("open ret = %d, want -ENOENT", int64(p.ExitCode))
	}
}

func TestSigactionRegistersHandler(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.MovRI(isa.R1, uint64(vm.SigSegv)).LeaCode(isa.R2, "handler")
		emitSyscall(b, SysSigaction)
		// Trigger a fault; handler writes 5 to "flag"; resume reads it.
		b.MovRI(isa.R5, 0xbad0000)
		b.Load(8, isa.R4, isa.R5, 0)
		b.LeaData(isa.R2, "flag").Load(8, isa.R1, isa.R2, 0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Func("handler").
			MovRI(isa.R4, 5).
			LeaData(isa.R5, "flag").
			Store(8, isa.R5, 0, isa.R4).
			Ret().
			EndFunc()
		b.BSS("flag", 8)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.State != vm.ProcExited || p.ExitCode != 5 {
		t.Errorf("state=%v exit=%d crash=%v", p.State, p.ExitCode, p.Crash)
	}
}

func TestSpawnThread(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaCode(isa.R1, "worker").MovRI(isa.R2, 21)
		emitSyscall(b, SysSpawnThread)
		// Sleep to let the worker run, then read the result.
		b.MovRI(isa.R1, 1000)
		emitSyscall(b, SysNanosleep)
		b.LeaData(isa.R2, "out").Load(8, isa.R1, isa.R2, 0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Func("worker").
			// R1 = arg; double it into "out", then exit_thread.
			MovRR(isa.R3, isa.R1).
			AddRR(isa.R3, isa.R1).
			LeaData(isa.R4, "out").
			Store(8, isa.R4, 0, isa.R3).
			MovRI(isa.R0, SysExitThread).
			Syscall().
			EndFunc()
		b.BSS("out", 8)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(10_000_000)
	if p.State != vm.ProcExited || p.ExitCode != 42 {
		t.Errorf("state=%v exit=%d, want 42 from worker", p.State, p.ExitCode)
	}
}

type recordingObserver struct {
	entered []string
	exits   map[string]uint64
}

func (r *recordingObserver) SyscallEnter(ev Event) {
	r.entered = append(r.entered, ev.Name)
}

func (r *recordingObserver) SyscallExit(ev Event, ret uint64) {
	if r.exits == nil {
		r.exits = make(map[string]uint64)
	}
	r.exits[ev.Name] = ret
}

func TestObserverSeesSyscalls(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.MovRI(isa.R1, 0xbad0000)
		emitSyscall(b, SysAccess)
		b.MovRI(isa.R1, 0)
		emitSyscall(b, SysExit)
		b.EndFunc()
	})
	obs := &recordingObserver{}
	k.SetObserver(obs)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if len(obs.entered) != 2 || obs.entered[0] != "access" {
		t.Errorf("entered = %v", obs.entered)
	}
	if got := obs.exits["access"]; int64(got) != -EFAULT {
		t.Errorf("access ret = %d, want -EFAULT", int64(got))
	}
}

func TestArgRewriterInvalidatesPointer(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaData(isa.R1, "path") // valid pointer
		emitSyscall(b, SysAccess)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.Data("path", []byte("/x\x00"))
	})
	k.AddFile("/x", nil)
	k.SetArgRewriter(func(_ *vm.Thread, num uint64, args *[5]uint64) {
		if num == SysAccess {
			args[0] = 0xdead0000
		}
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("rewritten access ret = %d, want -EFAULT", int64(p.ExitCode))
	}
}

func TestSpecsTableIComplete(t *testing.T) {
	// The EFAULT-capable subset must cover the 13 syscalls of Table I.
	want := []string{
		"chmod", "connect", "epoll_wait", "mkdir", "open", "read",
		"recv", "recvfrom", "send", "sendmsg", "symlink", "unlink", "write",
	}
	capable := make(map[string]bool)
	for _, s := range Specs() {
		if s.CanEFAULT {
			capable[s.Name] = true
		}
	}
	for _, name := range want {
		if !capable[name] {
			t.Errorf("syscall %q missing from EFAULT-capable set", name)
		}
	}
}

func TestSpecFor(t *testing.T) {
	s, ok := SpecFor(SysRead)
	if !ok || s.Name != "read" || len(s.PtrArgs) != 1 {
		t.Errorf("SpecFor(read) = %+v %v", s, ok)
	}
	if _, ok := SpecFor(9999); ok {
		t.Error("SpecFor(9999) should miss")
	}
}

func TestUnknownSyscallEINVAL(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, 9999)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EINVAL {
		t.Errorf("unknown syscall ret = %d, want -EINVAL", int64(p.ExitCode))
	}
}

func TestSendmsgEFAULTOnHeader(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		// sendmsg with invalid msghdr pointer.
		b.MovRR(isa.R1, isa.R7).MovRI(isa.R2, 0xdead0000)
		emitSyscall(b, SysSendmsg)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if _, err := k.Connect(80); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("sendmsg ret = %d, want -EFAULT", int64(p.ExitCode))
	}
}
