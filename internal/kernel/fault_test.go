package kernel

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/isa"
	"crashresist/internal/mem"
)

// TestReadEFAULTOnPartialMapping verifies all-or-nothing copy semantics:
// a buffer that starts on a mapped page but runs into unmapped memory must
// yield -EFAULT with no partial write (matching copy_to_user behaviour).
func TestReadEFAULTOnPartialMapping(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		// read(conn, bufptr, 64) with bufptr loaded from a global.
		b.MovRR(isa.R1, isa.R7).
			LeaData(isa.R2, "bufptr").
			Load(8, isa.R2, isa.R2, 0).
			MovRI(isa.R3, 64)
		emitSyscall(b, SysRead)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("bufptr", 8)
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)

	// Map one page and aim the buffer at its last 16 bytes, so the
	// 64-byte read range runs off the end.
	const page = 0x200000000
	if err := p.AS.Map(page, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	bufAddr := uint64(page + mem.PageSize - 16)
	mod := p.Modules()[0]
	bufptrVA := mod.VA(mod.Image.BSSStart())
	if err := p.AS.WriteUint(bufptrVA, 8, bufAddr); err != nil {
		t.Fatal(err)
	}

	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("0123456789abcdef0123456789abcdef"))
	p.RunUntilIdle(1_000_000)

	if int64(p.ExitCode) != -EFAULT {
		t.Fatalf("read ret = %d, want -EFAULT", int64(p.ExitCode))
	}
	// No partial data may have landed in the mapped prefix.
	got, err := p.AS.Read(bufAddr, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range got {
		if c != 0 {
			t.Fatalf("partial copy leaked to byte %d: % x", i, got)
		}
	}

	// The fault-event time series bucketed the -EFAULT completion: bucket
	// totals always equal the EFAULT return counter.
	c := k.Counts()
	if c.EFAULTReturns == 0 {
		t.Fatal("EFAULTReturns = 0 after an -EFAULT completion")
	}
	var total uint64
	for _, n := range c.EFAULTBuckets {
		total += n
	}
	if total != c.EFAULTReturns {
		t.Errorf("fault buckets sum to %d, want %d", total, c.EFAULTReturns)
	}
	// Counts() hands out a clone: mutating it must not reach the kernel.
	for b := range c.EFAULTBuckets {
		c.EFAULTBuckets[b] += 100
	}
	if again := k.Counts(); again.EFAULTBuckets[firstKey(again.EFAULTBuckets)] >= 100 {
		t.Error("Counts() exposed the kernel's live bucket map")
	}
}

// firstKey returns any key of a non-empty map (test helper).
func firstKey(m map[uint64]uint64) uint64 {
	for k := range m {
		return k
	}
	return 0
}

// TestPathStringCrossingIntoUnmapped verifies EFAULT when a NUL-terminated
// path starts mapped but the terminator lies beyond the mapping.
func TestPathStringCrossingIntoUnmapped(t *testing.T) {
	p, _ := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		b.LeaData(isa.R1, "pathptr").Load(8, isa.R1, isa.R1, 0)
		emitSyscall(b, SysAccess)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("pathptr", 8)
	})
	const page = 0x200000000
	if err := p.AS.Map(page, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	// Fill the page tail with non-NUL bytes: the scan must walk off the
	// page before finding a terminator.
	tail := make([]byte, 16)
	for i := range tail {
		tail[i] = 'A'
	}
	if err := p.AS.Write(page+mem.PageSize-16, tail); err != nil {
		t.Fatal(err)
	}
	mod := p.Modules()[0]
	if err := p.AS.WriteUint(mod.VA(mod.Image.BSSStart()), 8, page+mem.PageSize-16); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("access ret = %d, want -EFAULT", int64(p.ExitCode))
	}
	if p.Crash != nil {
		t.Errorf("kernel path scan crashed the process: %v", p.Crash)
	}
}

// TestEpollWaitEventsBufferPartiallyMapped verifies the events output range
// is validated in full before any event is written.
func TestEpollWaitEventsBufferPartiallyMapped(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		emitSyscall(b, SysEpollCreate)
		b.MovRR(isa.R9, isa.R0)
		b.LeaData(isa.R4, "ev").MovRI(isa.R5, EpollIn).Store(4, isa.R4, 0, isa.R5).Store(8, isa.R4, 8, isa.R6)
		b.MovRR(isa.R1, isa.R9).MovRI(isa.R2, EpollCtlAdd).MovRR(isa.R3, isa.R6)
		emitSyscall(b, SysEpollCtl)
		// epoll_wait with 8 events into a buffer loaded from a global.
		b.MovRR(isa.R1, isa.R9).
			LeaData(isa.R2, "evptr").
			Load(8, isa.R2, isa.R2, 0).
			MovRI(isa.R3, 8).
			MovRI(isa.R4, 0)
		emitSyscall(b, SysEpollWait)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("ev", 16)
		b.BSS("evptr", 8)
	})
	const page = 0x200000000
	if err := p.AS.Map(page, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	mod := p.Modules()[0]
	// 8 events × 16 bytes = 128; place the buffer 64 bytes from the end.
	evptrOff := mod.Image.BSSStart() + 16
	if err := p.AS.WriteUint(mod.VA(evptrOff), 8, page+mem.PageSize-64); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Connect(80); err == nil {
		t.Fatal("connect before listen should fail") // server not yet running
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("epoll_wait ret = %d, want -EFAULT (partial range)", int64(p.ExitCode))
	}
}

// TestWriteToReadOnlyBufferEFAULT: read() into a read-only page must EFAULT,
// not fault — the permission check matters, not just the mapping.
func TestWriteToReadOnlyBufferEFAULT(t *testing.T) {
	p, k := buildLinuxProc(t, func(b *asm.Builder) {
		b.Func("main").Entry("main")
		emitSyscall(b, SysSocket)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80)
		emitSyscall(b, SysBind)
		b.MovRR(isa.R1, isa.R6)
		emitSyscall(b, SysListen)
		b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
		emitSyscall(b, SysAccept)
		b.MovRR(isa.R7, isa.R0)
		b.MovRR(isa.R1, isa.R7).
			LeaData(isa.R2, "roptr").
			Load(8, isa.R2, isa.R2, 0).
			MovRI(isa.R3, 8)
		emitSyscall(b, SysRead)
		b.MovRR(isa.R1, isa.R0)
		emitSyscall(b, SysExit)
		b.EndFunc()
		b.BSS("roptr", 8)
	})
	const page = 0x200000000
	if err := p.AS.Map(page, mem.PageSize, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	mod := p.Modules()[0]
	if err := p.AS.WriteUint(mod.VA(mod.Image.BSSStart()), 8, page); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("x"))
	p.RunUntilIdle(1_000_000)
	if int64(p.ExitCode) != -EFAULT {
		t.Errorf("read into r/o page ret = %d, want -EFAULT", int64(p.ExitCode))
	}
}
