// Package kernel implements the Linux-model system call layer for simulated
// processes: file descriptors, stream sockets driven by an external test
// monitor, epoll, a tiny in-memory filesystem, signals and threads.
//
// The property the paper's first discovery pipeline exploits lives here: the
// kernel validates every user pointer *before* touching it and reports
// -EFAULT to the caller instead of faulting, exactly like a real kernel's
// copy_from_user/copy_to_user path. A program that passes an
// attacker-controlled pointer to such a syscall and survives the error
// return is a crash-resistant probing primitive.
package kernel

import (
	"fmt"
	"maps"

	"crashresist/internal/faultinject"
	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// Syscall numbers (M64 Linux-model ABI: number in R0, args in R1..R5,
// result in R0; errors are returned as -errno).
const (
	SysExit        uint64 = 1
	SysExitThread  uint64 = 2
	SysRead        uint64 = 3
	SysWrite       uint64 = 4
	SysOpen        uint64 = 5
	SysClose       uint64 = 6
	SysSocket      uint64 = 7
	SysBind        uint64 = 8
	SysListen      uint64 = 9
	SysAccept      uint64 = 10
	SysConnect     uint64 = 11
	SysRecv        uint64 = 12
	SysRecvfrom    uint64 = 13
	SysSend        uint64 = 14
	SysSendmsg     uint64 = 15
	SysEpollCreate uint64 = 16
	SysEpollCtl    uint64 = 17
	SysEpollWait   uint64 = 18
	SysChmod       uint64 = 19
	SysMkdir       uint64 = 20
	SysUnlink      uint64 = 21
	SysSymlink     uint64 = 22
	SysSigaction   uint64 = 23
	SysSpawnThread uint64 = 24
	SysNanosleep   uint64 = 25
	SysAccess      uint64 = 26
	SysGetpid      uint64 = 27
)

// Errno values.
const (
	ENOENT = 2
	EIO    = 5
	EBADF  = 9
	EAGAIN = 11
	EFAULT = 14
	EINVAL = 22
)

// TicksPerSecond converts virtual clock ticks to simulated seconds; server
// models use it for epoll timeouts.
const TicksPerSecond = 1_000_000

// EpollEventSize is the byte size of a struct epoll_event in the M64 ABI:
// u32 events, u32 pad, u64 data.
const EpollEventSize = 16

// Epoll event bits.
const (
	EpollIn  = 0x1
	EpollOut = 0x4
	EpollHup = 0x10
)

// Epoll ctl ops.
const (
	EpollCtlAdd = 1
	EpollCtlDel = 2
	EpollCtlMod = 3
)

// errRet encodes -errno as a register value.
func errRet(errno uint64) uint64 { return -errno }

// PtrArg describes one pointer parameter of a syscall.
type PtrArg struct {
	// Index is the argument position (0 = R1).
	Index int
	// Access is the check the kernel performs on the pointed-to memory.
	Access mem.Access
}

// Spec is the static description of one syscall, consumed by the discovery
// pipeline to know which calls can report EFAULT and where their pointer
// arguments sit.
type Spec struct {
	Num  uint64
	Name string
	// PtrArgs lists the pointer parameters the kernel validates.
	PtrArgs []PtrArg
	// CanEFAULT reports whether a bad pointer argument makes the call
	// return -EFAULT (rather than the argument being a non-pointer).
	CanEFAULT bool
}

// Specs returns the full syscall table. The EFAULT-capable subset matches
// the 13 rows of the paper's Table I.
func Specs() []Spec {
	return []Spec{
		{Num: SysExit, Name: "exit"},
		{Num: SysExitThread, Name: "exit_thread"},
		{Num: SysRead, Name: "read", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessWrite}}, CanEFAULT: true},
		{Num: SysWrite, Name: "write", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysOpen, Name: "open", PtrArgs: []PtrArg{{Index: 0, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysClose, Name: "close"},
		{Num: SysSocket, Name: "socket"},
		{Num: SysBind, Name: "bind"},
		{Num: SysListen, Name: "listen"},
		{Num: SysAccept, Name: "accept"},
		{Num: SysConnect, Name: "connect", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysRecv, Name: "recv", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessWrite}}, CanEFAULT: true},
		{Num: SysRecvfrom, Name: "recvfrom", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessWrite}, {Index: 3, Access: mem.AccessWrite}}, CanEFAULT: true},
		{Num: SysSend, Name: "send", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysSendmsg, Name: "sendmsg", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysEpollCreate, Name: "epoll_create"},
		{Num: SysEpollCtl, Name: "epoll_ctl", PtrArgs: []PtrArg{{Index: 3, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysEpollWait, Name: "epoll_wait", PtrArgs: []PtrArg{{Index: 1, Access: mem.AccessWrite}}, CanEFAULT: true},
		{Num: SysChmod, Name: "chmod", PtrArgs: []PtrArg{{Index: 0, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysMkdir, Name: "mkdir", PtrArgs: []PtrArg{{Index: 0, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysUnlink, Name: "unlink", PtrArgs: []PtrArg{{Index: 0, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysSymlink, Name: "symlink", PtrArgs: []PtrArg{{Index: 0, Access: mem.AccessRead}, {Index: 1, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysSigaction, Name: "sigaction"},
		{Num: SysSpawnThread, Name: "spawn_thread"},
		{Num: SysNanosleep, Name: "nanosleep"},
		{Num: SysAccess, Name: "access", PtrArgs: []PtrArg{{Index: 0, Access: mem.AccessRead}}, CanEFAULT: true},
		{Num: SysGetpid, Name: "getpid"},
	}
}

// SpecFor returns the spec for a syscall number.
func SpecFor(num uint64) (Spec, bool) {
	for _, s := range Specs() {
		if s.Num == num {
			return s, true
		}
	}
	return Spec{}, false
}

// Event is the record handed to a syscall observer at invocation time.
type Event struct {
	Thread *vm.Thread
	Num    uint64
	Name   string
	Args   [5]uint64
	// Retry is true when a blocking syscall re-evaluates after a wakeup
	// rather than being freshly invoked by a SYSCALL instruction.
	Retry bool
}

// Observer watches syscall invocations and completions.
type Observer interface {
	// SyscallEnter fires when a SYSCALL instruction enters the kernel.
	SyscallEnter(ev Event)
	// SyscallExit fires when the call completes with ret in R0.
	SyscallExit(ev Event, ret uint64)
}

// ArgRewriter may mutate syscall arguments at entry; the discovery
// pipeline's validation monitor uses this to invalidate pointer arguments,
// mirroring the paper's libdft monitor commands.
type ArgRewriter func(t *vm.Thread, num uint64, args *[5]uint64)

// Kernel implements vm.SyscallHandler for one process.
type Kernel struct {
	proc *vm.Process

	fds map[int]fileLike

	listeners map[uint64]*listener // port → listener
	conns     []*serverConn
	nextConn  int

	fs map[string][]byte

	observer Observer
	rewrite  ArgRewriter
	plan     *faultinject.Plan

	counts Counts

	// sleepers are threads blocked in the kernel; any external event
	// wakes them all and their continuations re-evaluate readiness.
	sleepers map[int]*vm.Thread
}

// Counts aggregates kernel-level dispatch counters for the observability
// layer. Totals are deterministic for a fixed seed and workload.
type Counts struct {
	// Dispatched counts SYSCALL instructions entering the kernel.
	Dispatched uint64
	// EFAULTReturns counts completions that returned -EFAULT, i.e. the
	// crash-resistant "bad pointer survived" signal from §IV-A.
	EFAULTReturns uint64
	// Injected counts syscalls answered with a plan-injected error
	// (-EAGAIN transient, -EIO permanent) instead of running.
	Injected uint64
	// EFAULTBuckets is the process's fault-event time series: -EFAULT
	// completions bucketed by the virtual second of the process clock
	// (Clock / TicksPerSecond) at completion time. The kernel has no wall
	// clock, so the series — like every count here — is deterministic for
	// a fixed seed and workload.
	EFAULTBuckets map[uint64]uint64 `json:"efault_buckets,omitempty"`
}

// Counts returns the kernel's dispatch counters so far. The bucket series
// is copied, so callers may retain the result across further dispatches.
func (k *Kernel) Counts() Counts {
	c := k.counts
	c.EFAULTBuckets = maps.Clone(c.EFAULTBuckets)
	return c
}

// fileLike is anything installable in the fd table.
type fileLike interface {
	kind() string
}

// New creates a kernel. Call Attach to bind it to a process.
func New() *Kernel {
	return &Kernel{
		fds:       make(map[int]fileLike),
		listeners: make(map[uint64]*listener),
		fs:        make(map[string][]byte),
		sleepers:  make(map[int]*vm.Thread),
	}
}

// Attach wires the kernel into the process as its syscall handler.
func (k *Kernel) Attach(p *vm.Process) {
	k.proc = p
	p.Syscalls = k
}

// SetObserver installs a syscall observer.
func (k *Kernel) SetObserver(o Observer) { k.observer = o }

// SetFaultPlan attaches a fault plan; selected syscalls then fail with
// -EAGAIN (transient) or -EIO (permanent) before their body runs, keyed by
// the kernel's dispatch index. Injection deliberately never uses -EFAULT:
// that return is the pipeline's discovery signal and must stay attributable
// to real pointer validation.
func (k *Kernel) SetFaultPlan(p *faultinject.Plan) { k.plan = p }

// SetArgRewriter installs an argument rewriter.
func (k *Kernel) SetArgRewriter(f ArgRewriter) { k.rewrite = f }

// AddFile installs a file in the in-memory filesystem.
func (k *Kernel) AddFile(path string, contents []byte) {
	k.fs[path] = append([]byte(nil), contents...)
}

// FileContents returns a filesystem file's contents.
func (k *Kernel) FileContents(path string) ([]byte, bool) {
	c, ok := k.fs[path]
	return c, ok
}

var _ vm.SyscallHandler = (*Kernel)(nil)

// Syscall dispatches one SYSCALL instruction.
func (k *Kernel) Syscall(p *vm.Process, t *vm.Thread) {
	num := t.Reg(0)
	var args [5]uint64
	for i := 0; i < 5; i++ {
		args[i] = t.Regs[1+i]
	}
	if k.rewrite != nil {
		k.rewrite(t, num, &args)
	}
	k.counts.Dispatched++
	spec, _ := SpecFor(num)
	ev := Event{Thread: t, Num: num, Name: spec.Name, Args: args}
	if k.observer != nil {
		k.observer.SyscallEnter(ev)
	}
	// Process teardown is not interceptable; everything else may draw an
	// injected error keyed by the dispatch index (unique per kernel, so
	// decisions replay identically for a fixed seed and workload).
	if k.plan != nil && num != SysExit && num != SysExitThread {
		if f := k.plan.FaultAt(faultinject.SiteKernelSyscall, k.counts.Dispatched); f != nil {
			k.counts.Injected++
			errno := uint64(EIO)
			if f.Transient() {
				errno = EAGAIN
			}
			k.complete(t, ev, errRet(errno))
			return
		}
	}
	k.invoke(t, ev)
}

// complete finishes a syscall, reporting to the observer.
func (k *Kernel) complete(t *vm.Thread, ev Event, ret uint64) {
	if int64(ret) == -int64(EFAULT) {
		k.counts.EFAULTReturns++
		if k.counts.EFAULTBuckets == nil {
			k.counts.EFAULTBuckets = make(map[uint64]uint64)
		}
		k.counts.EFAULTBuckets[k.proc.Clock/TicksPerSecond]++
	}
	t.SetReg(0, ret)
	if k.proc.Flow != nil {
		// The return value is kernel-produced: clear R0's taint and
		// provenance.
		k.proc.Flow.SetRegImm(t.ID, 0)
	}
	if k.observer != nil {
		k.observer.SyscallExit(ev, ret)
	}
}

// invoke runs (or re-runs, after a wakeup) the syscall body.
func (k *Kernel) invoke(t *vm.Thread, ev Event) {
	p := k.proc
	args := ev.Args
	switch ev.Num {
	case SysExit:
		p.Exit(args[0])
	case SysExitThread:
		t.State = vm.ThreadDone
	case SysGetpid:
		k.complete(t, ev, 1)
	case SysSigaction:
		sig := int(args[0])
		if sig <= 0 || sig > 64 {
			k.complete(t, ev, errRet(EINVAL))
			return
		}
		p.SignalHandlers[sig] = args[1]
		k.complete(t, ev, 0)
	case SysSpawnThread:
		nt, err := p.StartThread("worker", args[0], args[1])
		if err != nil {
			k.complete(t, ev, errRet(EAGAIN))
			return
		}
		k.complete(t, ev, uint64(nt.ID))
	case SysNanosleep:
		k.block(t, p.Clock+args[0], func(bool) {
			k.complete(t, ev, 0)
		})

	case SysOpen:
		k.sysOpen(t, ev)
	case SysClose:
		k.sysClose(t, ev)
	case SysRead:
		k.sysRead(t, ev)
	case SysWrite:
		k.sysWrite(t, ev)
	case SysAccess, SysChmod, SysMkdir, SysUnlink:
		k.sysPathOp(t, ev)
	case SysSymlink:
		k.sysSymlink(t, ev)

	case SysSocket:
		k.sysSocket(t, ev)
	case SysBind:
		k.sysBind(t, ev)
	case SysListen:
		k.sysListen(t, ev)
	case SysAccept:
		k.sysAccept(t, ev)
	case SysConnect:
		k.sysConnect(t, ev)
	case SysRecv, SysRecvfrom:
		k.sysRecv(t, ev)
	case SysSend:
		k.sysSend(t, ev)
	case SysSendmsg:
		k.sysSendmsg(t, ev)

	case SysEpollCreate:
		k.sysEpollCreate(t, ev)
	case SysEpollCtl:
		k.sysEpollCtl(t, ev)
	case SysEpollWait:
		k.sysEpollWait(t, ev)

	default:
		k.complete(t, ev, errRet(EINVAL))
	}
}

// block parks a thread in the kernel; external events (wakeAll) or the
// timeout resume it.
func (k *Kernel) block(t *vm.Thread, wakeAt uint64, resume func(timedOut bool)) {
	if t.InFilter() {
		// Filters must not block; fail the operation immediately.
		resume(true)
		return
	}
	k.sleepers[t.ID] = t
	t.Block(wakeAt, func(timedOut bool) {
		delete(k.sleepers, t.ID)
		resume(timedOut)
	})
}

// retry re-parks a thread with the same continuation semantics as the
// original call; used by blocking syscalls after a spurious wakeup.
func (k *Kernel) retry(t *vm.Thread, ev Event, wakeAt uint64) {
	if t.InFilter() {
		// Exception dispatch must not block; re-invoking would recurse
		// (the block helper resumes in-filter threads synchronously).
		// Fail the call the way a nonblocking descriptor would.
		k.complete(t, ev, errRet(EAGAIN))
		return
	}
	ev.Retry = true
	k.block(t, wakeAt, func(timedOut bool) {
		if timedOut && wakeAt != 0 {
			// Let the specific syscall decide what a timeout
			// means by re-invoking; epoll_wait handles it.
			k.invokeTimedOut(t, ev)
			return
		}
		k.invoke(t, ev)
	})
}

// invokeTimedOut completes calls whose wait deadline expired.
func (k *Kernel) invokeTimedOut(t *vm.Thread, ev Event) {
	switch ev.Num {
	case SysEpollWait:
		k.complete(t, ev, 0) // no events
	default:
		k.invoke(t, ev)
	}
}

// wakeAll resumes every kernel sleeper so continuations can re-check
// readiness; called whenever the external monitor changes socket state.
func (k *Kernel) wakeAll() {
	// Collect first: waking mutates the map.
	ids := make([]int, 0, len(k.sleepers))
	for id := range k.sleepers {
		ids = append(ids, id)
	}
	// Deterministic order.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		if t, ok := k.sleepers[id]; ok {
			t.Wake(false)
		}
	}
}

// installFD assigns the lowest free descriptor ≥ 3, matching POSIX fd
// allocation. Reuse keeps long-running servers' fd-indexed structures
// bounded, exactly as on a real system.
func (k *Kernel) installFD(f fileLike) int {
	fd := 3
	for {
		if _, used := k.fds[fd]; !used {
			break
		}
		fd++
	}
	k.fds[fd] = f
	return fd
}

// readPath copies a NUL-terminated string (max 255 bytes) from user memory.
// A nil error with ok=false means the pointer was invalid (EFAULT).
func (k *Kernel) readPath(addr uint64) (string, bool) {
	var out []byte
	for i := 0; i < 256; i++ {
		b, err := k.proc.AS.ReadUint(addr+uint64(i), 1)
		if err != nil {
			return "", false
		}
		if b == 0 {
			return string(out), true
		}
		out = append(out, byte(b))
	}
	return string(out), true
}

func (k *Kernel) String() string {
	return fmt.Sprintf("kernel{fds=%d conns=%d}", len(k.fds), len(k.conns))
}
