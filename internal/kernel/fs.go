package kernel

import (
	"crashresist/internal/vm"
)

// fsFile is an open handle into the in-memory filesystem.
type fsFile struct {
	path string
	pos  int
}

func (f *fsFile) kind() string { return "file" }

// sysOpen opens (or creates) a filesystem file. The path pointer is
// EFAULT-checked.
func (k *Kernel) sysOpen(t *vm.Thread, ev Event) {
	path, ok := k.readPath(ev.Args[0])
	if !ok {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	const flagCreate = 1
	if _, exists := k.fs[path]; !exists {
		if ev.Args[1]&flagCreate == 0 {
			k.complete(t, ev, errRet(ENOENT))
			return
		}
		k.fs[path] = nil
	}
	fd := k.installFD(&fsFile{path: path})
	k.complete(t, ev, uint64(fd))
}

// sysRead handles read() for both files and sockets: read(fd, buf, n).
func (k *Kernel) sysRead(t *vm.Thread, ev Event) {
	switch f := k.fds[int(ev.Args[0])].(type) {
	case *serverConn:
		k.streamRead(t, ev, f, ev.Args[1], ev.Args[2])
	case *fsFile:
		contents := k.fs[f.path]
		if f.pos >= len(contents) {
			k.complete(t, ev, 0)
			return
		}
		take := int(ev.Args[2])
		if take > len(contents)-f.pos {
			take = len(contents) - f.pos
		}
		if err := k.proc.AS.Write(ev.Args[1], contents[f.pos:f.pos+take]); err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
		f.pos += take
		k.complete(t, ev, uint64(take))
	default:
		k.complete(t, ev, errRet(EBADF))
	}
}

// sysWrite handles write() for both files and sockets.
func (k *Kernel) sysWrite(t *vm.Thread, ev Event) {
	switch f := k.fds[int(ev.Args[0])].(type) {
	case *serverConn:
		k.streamWrite(t, ev, f, ev.Args[1], ev.Args[2])
	case *fsFile:
		data, err := k.proc.AS.Read(ev.Args[1], ev.Args[2])
		if err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
		contents := k.fs[f.path]
		for len(contents) < f.pos {
			contents = append(contents, 0)
		}
		contents = append(contents[:f.pos], data...)
		k.fs[f.path] = contents
		f.pos += len(data)
		k.complete(t, ev, ev.Args[2])
	default:
		k.complete(t, ev, errRet(EBADF))
	}
}

// sysPathOp implements access/chmod/mkdir/unlink: all validate the path
// pointer (EFAULT) and then act trivially on the in-memory filesystem.
func (k *Kernel) sysPathOp(t *vm.Thread, ev Event) {
	path, ok := k.readPath(ev.Args[0])
	if !ok {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	switch ev.Num {
	case SysAccess, SysChmod:
		if _, exists := k.fs[path]; !exists {
			k.complete(t, ev, errRet(ENOENT))
			return
		}
		k.complete(t, ev, 0)
	case SysMkdir:
		// Directories are implicit; report success.
		k.complete(t, ev, 0)
	case SysUnlink:
		if _, exists := k.fs[path]; !exists {
			k.complete(t, ev, errRet(ENOENT))
			return
		}
		delete(k.fs, path)
		k.complete(t, ev, 0)
	default:
		k.complete(t, ev, errRet(EINVAL))
	}
}

// sysSymlink validates both path pointers, then records the link as a copy.
func (k *Kernel) sysSymlink(t *vm.Thread, ev Event) {
	target, ok := k.readPath(ev.Args[0])
	if !ok {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	linkPath, ok := k.readPath(ev.Args[1])
	if !ok {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	contents, exists := k.fs[target]
	if !exists {
		contents = nil
	}
	k.fs[linkPath] = append([]byte(nil), contents...)
	k.complete(t, ev, 0)
}
