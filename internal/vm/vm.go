// Package vm implements the M64 process emulator: a multi-threaded CPU
// interpreter over a paged address space with precise fault semantics, a
// deterministic round-robin scheduler driven by a virtual clock, and the two
// exception models the paper analyzes — frame-based structured exception
// handling (Windows model) and process-wide signal dispatch (Linux model).
//
// The VM is the measurement substrate for every experiment: it reports each
// fault, whether and where it was handled, and drives the pluggable syscall
// (kernel) and API (winapi) layers through narrow interfaces so the taint and
// trace engines can observe every data flow.
package vm

import (
	"fmt"

	"crashresist/internal/isa"
	"crashresist/internal/mem"
)

// Platform selects the exception model of a process.
type Platform uint8

// Platforms.
const (
	// PlatformLinux uses process-wide signal handlers; an unhandled
	// SIGSEGV terminates the process. Programs reach the kernel through
	// the SYSCALL instruction.
	PlatformLinux Platform = iota + 1
	// PlatformWindows uses frame-based SEH driven by scope tables; an
	// unhandled exception terminates the process. Programs reach the
	// platform through imported API functions (CALLI).
	PlatformWindows
)

// String returns "linux" or "windows".
func (p Platform) String() string {
	switch p {
	case PlatformLinux:
		return "linux"
	case PlatformWindows:
		return "windows"
	default:
		return "platform?"
	}
}

// Exception codes (Windows-model numeric space, also used as the internal
// representation on the Linux model before signal translation).
const (
	ExcAccessViolation    uint32 = 0xC0000005
	ExcIllegalInstruction uint32 = 0xC000001D
	ExcDivideByZero       uint32 = 0xC0000094
	ExcStackOverflow      uint32 = 0xC00000FD
	ExcGuardPage          uint32 = 0x80000001
)

// SEH filter dispositions, as returned in R0 by filter functions.
const (
	DispositionContinueExecution = ^uint64(0) // -1: resume after faulting instruction
	DispositionContinueSearch    = 0          // keep looking for a handler
	DispositionExecuteHandler    = 1          // unwind to the handler target
)

// Signal numbers for the Linux model.
const (
	SigIll  = 4
	SigFpe  = 8
	SigSegv = 11
)

// Exception describes a fault or software exception.
type Exception struct {
	Code     uint32
	Addr     uint64 // faulting data address (memory faults)
	PC       uint64 // address of the faulting instruction
	Access   mem.Access
	Unmapped bool // memory fault hit unmapped (vs mapped-but-protected) memory
}

// String renders the exception for diagnostics.
func (e Exception) String() string {
	if e.Code == ExcAccessViolation {
		kind := "protected"
		if e.Unmapped {
			kind = "unmapped"
		}
		return fmt.Sprintf("access violation (%s %s %#x) at pc %#x", kind, e.Access, e.Addr, e.PC)
	}
	return fmt.Sprintf("exception %#x at pc %#x", e.Code, e.PC)
}

// Signal returns the Linux-model signal number for the exception code.
func (e Exception) Signal() int {
	switch e.Code {
	case ExcAccessViolation, ExcStackOverflow, ExcGuardPage:
		return SigSegv
	case ExcDivideByZero:
		return SigFpe
	default:
		return SigIll
	}
}

// SyscallHandler is the kernel-side implementation of the SYSCALL
// instruction. The handler reads the syscall number from R0 and arguments
// from R1..R5, and either completes the call (setting R0) or blocks the
// thread via Thread.Block.
type SyscallHandler interface {
	Syscall(p *Process, t *Thread)
}

// APIHandler is the platform-API side of native CALLI imports.
type APIHandler interface {
	// Resolve maps an imported API symbol name to an API identifier.
	Resolve(symbol string) (uint32, error)
	// Call executes API id for the thread; arguments are in R1..R5 and
	// the result goes to R0. A non-nil Exception means the API faulted in
	// user mode (e.g. dereferenced a bad pointer in its user-space stub)
	// and the exception must be dispatched at the call site.
	Call(p *Process, t *Thread, id uint32) *Exception
}

// Tracer observes execution. Any method may be a no-op; the VM only invokes
// a non-nil tracer. Tracers must not mutate the process.
type Tracer interface {
	OnInstruction(t *Thread, pc uint64, ins isa.Instruction)
	OnCall(t *Thread, target, retPC uint64)
	OnRet(t *Thread, retPC uint64)
	OnAPICall(t *Thread, callPC uint64, id uint32)
	OnException(t *Thread, exc Exception)
	OnExceptionHandled(t *Thread, exc Exception, handlerPC uint64)
}

// DataFlow receives register/memory transfer events for taint tracking.
// Implementations must be cheap; they run inline on every instruction.
type DataFlow interface {
	// CopyRegReg propagates dst = src.
	CopyRegReg(tid int, dst, src isa.Register)
	// SetRegImm clears dst (constant assignment).
	SetRegImm(tid int, dst isa.Register)
	// CombineReg merges src into dst (binary ALU op).
	CombineReg(tid int, dst, src isa.Register)
	// LoadMem propagates memory bytes [addr, addr+size) into dst.
	LoadMem(tid int, dst isa.Register, addr uint64, size int)
	// StoreMem propagates dst register bytes into [addr, addr+size).
	StoreMem(tid int, src isa.Register, addr uint64, size int)
	// ClearMem clears taint on [addr, addr+size) (constant stores).
	ClearMem(addr uint64, size int)
	// MarkMem sets a taint label on [addr, addr+size) (input sources).
	MarkMem(label uint8, addr uint64, size int)
	// RegTaint returns the taint label set of a register.
	RegTaint(tid int, r isa.Register) uint64
	// MemTaint returns the union label set of [addr, addr+size).
	MemTaint(addr uint64, size int) uint64
}

// Policy holds exception-dispatch countermeasures from the paper's §VII-C.
type Policy struct {
	// MappedOnlyAV makes access violations on *unmapped* memory
	// uncatchable: the process terminates without consulting any handler.
	// Violations on mapped-but-protected pages (e.g. guard-page
	// optimizations) remain handleable.
	MappedOnlyAV bool
}

// Stats aggregates process-level counters.
type Stats struct {
	Instructions   uint64
	Faults         uint64 // exceptions raised
	FaultsUnmapped uint64 // access violations on unmapped addresses
	FaultsHandled  uint64 // exceptions resolved by a handler
	FaultsInjected uint64 // faults fired by an attached fault plan
	Syscalls       uint64
	APICalls       uint64
}

// Add accumulates another process's counters, e.g. when a pipeline sums
// stats over many short-lived harness processes.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Faults += o.Faults
	s.FaultsUnmapped += o.FaultsUnmapped
	s.FaultsHandled += o.FaultsHandled
	s.FaultsInjected += o.FaultsInjected
	s.Syscalls += o.Syscalls
	s.APICalls += o.APICalls
}

// Minus returns the per-counter deltas since a prior snapshot of the same
// process, so callers can attribute cost to one phase of a long-lived
// process's life (the cost profiler charges a target's boot and scan
// phases separately). Counters are monotonic, so fields subtract directly;
// prev must be an earlier snapshot of the same Stats.
func (s Stats) Minus(prev Stats) Stats {
	return Stats{
		Instructions:   s.Instructions - prev.Instructions,
		Faults:         s.Faults - prev.Faults,
		FaultsUnmapped: s.FaultsUnmapped - prev.FaultsUnmapped,
		FaultsHandled:  s.FaultsHandled - prev.FaultsHandled,
		FaultsInjected: s.FaultsInjected - prev.FaultsInjected,
		Syscalls:       s.Syscalls - prev.Syscalls,
		APICalls:       s.APICalls - prev.APICalls,
	}
}

// CrashInfo records why a process died.
type CrashInfo struct {
	TID   int
	Exc   Exception
	Clock uint64
}

// String renders the crash record.
func (c *CrashInfo) String() string {
	return fmt.Sprintf("thread %d crashed at clock %d: %s", c.TID, c.Clock, c.Exc)
}

// ProcState is the lifecycle state of a process.
type ProcState uint8

// Process states.
const (
	ProcRunning ProcState = iota + 1
	ProcIdle              // all threads blocked with no pending timer
	ProcExited
	ProcCrashed
)

// String renders the process state.
func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcIdle:
		return "idle"
	case ProcExited:
		return "exited"
	case ProcCrashed:
		return "crashed"
	default:
		return "state?"
	}
}

// Magic return addresses recognized by the interpreter.
const (
	// threadExitMagic terminates the thread when returned to.
	threadExitMagic = 0xFFFFFFFFFFFF0F00
	// filterDoneMagic ends a filter-function sub-execution.
	filterDoneMagic = 0xFFFFFFFFFFFF0E00
	// sigReturnMagic ends a Linux-model signal handler.
	sigReturnMagic = 0xFFFFFFFFFFFF0D00
)

// ThreadState is the scheduler state of a thread.
type ThreadState uint8

// Thread states.
const (
	ThreadRunnable ThreadState = iota + 1
	ThreadBlocked
	ThreadDone
)

// Frame is one entry of the shadow call stack used for SEH frame walking.
type Frame struct {
	FuncEntry uint64 // callee entry address
	SPAtEntry uint64 // SP immediately after the call pushed the return address
	RetPC     uint64 // return address in the caller
}

// Thread is one thread of execution.
type Thread struct {
	ID   int
	Name string

	Regs  [isa.NumRegisters]uint64
	PC    uint64
	flagZ bool
	flagL bool // signed less-than from last compare
	flagB bool // unsigned below from last compare

	State  ThreadState
	WakeAt uint64 // virtual deadline when blocked with timeout (0 = none)
	resume func(timedOut bool)

	// StackBase and StackSize describe the thread's mapped stack region.
	StackBase uint64
	StackSize uint64

	frames      []Frame
	sigDepth    int
	savedSigCtx []sigCtx

	filterDepth int
	isMain      bool

	proc *Process

	// Instructions counts instructions retired by this thread.
	Instructions uint64
}

type sigCtx struct {
	regs   [isa.NumRegisters]uint64
	pc     uint64
	resume uint64 // where sigreturn continues
	frames int    // frame depth to restore
}

// Reg returns a register value.
func (t *Thread) Reg(r isa.Register) uint64 { return t.Regs[r] }

// SetReg sets a register value.
func (t *Thread) SetReg(r isa.Register, v uint64) { t.Regs[r] = v }

// Proc returns the owning process.
func (t *Thread) Proc() *Process { return t.proc }

// Block parks the thread until Wake is called or, if wakeAt is non-zero, the
// virtual clock reaches wakeAt. The resume continuation runs exactly once
// with timedOut reporting which of the two happened.
func (t *Thread) Block(wakeAt uint64, resume func(timedOut bool)) {
	t.State = ThreadBlocked
	t.WakeAt = wakeAt
	t.resume = resume
}

// Wake unparks a blocked thread. It is a no-op for non-blocked threads.
func (t *Thread) Wake(timedOut bool) {
	if t.State != ThreadBlocked {
		return
	}
	t.State = ThreadRunnable
	t.WakeAt = 0
	r := t.resume
	t.resume = nil
	if r != nil {
		r(timedOut)
	}
}

// InFilter reports whether the thread is currently evaluating an exception
// filter; kernels refuse to block in that context.
func (t *Thread) InFilter() bool { return t.filterDepth > 0 }

// OnStack reports whether addr lies within this thread's stack region.
func (t *Thread) OnStack(addr uint64) bool {
	return addr >= t.StackBase && addr < t.StackBase+t.StackSize
}

// Frames returns a copy of the shadow call stack, oldest first.
func (t *Thread) Frames() []Frame {
	out := make([]Frame, len(t.frames))
	copy(out, t.frames)
	return out
}
