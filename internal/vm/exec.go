package vm

import (
	"errors"

	"crashresist/internal/bin"
	"crashresist/internal/faultinject"
	"crashresist/internal/isa"
	"crashresist/internal/mem"
)

// step executes one instruction on t, dispatching any exception through the
// platform's exception model. It reports whether the thread yielded the CPU
// (blocked, exited, or executed YIELD).
func (p *Process) step(t *Thread) (yield bool) {
	if handled := p.handleMagicPC(t); handled {
		return true
	}
	exc := p.execOne(t)
	if exc != nil {
		p.dispatchException(t, *exc)
		return t.State != ThreadRunnable
	}
	return t.State != ThreadRunnable
}

// handleMagicPC consumes magic return addresses; it returns true if the PC
// was magic (thread state may have changed).
func (p *Process) handleMagicPC(t *Thread) bool {
	switch t.PC {
	case threadExitMagic:
		t.State = ThreadDone
		if t.isMain {
			// Main thread return ends the process.
			p.Exit(t.Regs[0])
		}
		return true
	case sigReturnMagic:
		p.sigReturn(t)
		return true
	}
	return false
}

// execOne executes exactly one instruction and returns the exception it
// raised, if any, without dispatching it. The PC is left at the faulting
// instruction on exception, and advanced on success.
func (p *Process) execOne(t *Thread) *Exception {
	var fetch [10]byte
	code, err := p.AS.FetchExec(t.PC, len(fetch), fetch[:0])
	if err != nil {
		return p.memFault(t.PC, err)
	}
	ins, size, err := isa.Decode(code)
	if err != nil {
		return &Exception{Code: ExcIllegalInstruction, PC: t.PC}
	}
	if p.Tracer != nil {
		p.Tracer.OnInstruction(t, t.PC, ins)
	}

	pc := t.PC
	next := pc + uint64(size)
	flow := p.Flow

	advance := func() {
		t.PC = next
		t.Instructions++
		p.Stats.Instructions++
		p.Clock++
	}

	switch ins.Op {
	case isa.OpNop:
		advance()
	case isa.OpYield:
		advance()
		return nil
	case isa.OpHalt:
		advance()
		p.Exit(t.Regs[0])
	case isa.OpRet:
		retPC, err := p.AS.ReadUint(t.Regs[16], 8)
		if err != nil {
			return p.faultAt(pc, t.Regs[16], mem.AccessRead, err)
		}
		t.Regs[16] += 8
		if len(t.frames) > 1 {
			t.frames = t.frames[:len(t.frames)-1]
		}
		if p.Tracer != nil {
			p.Tracer.OnRet(t, retPC)
		}
		t.PC = retPC
		t.Instructions++
		p.Stats.Instructions++
		p.Clock++
	case isa.OpSyscall:
		advance()
		p.Stats.Syscalls++
		if p.Syscalls == nil {
			return &Exception{Code: ExcIllegalInstruction, PC: pc}
		}
		p.Syscalls.Syscall(p, t)

	case isa.OpPush:
		sp := t.Regs[16] - 8
		if err := p.AS.WriteUint(sp, 8, t.Regs[ins.A]); err != nil {
			return p.faultAt(pc, sp, mem.AccessWrite, err)
		}
		if flow != nil {
			flow.StoreMem(t.ID, ins.A, sp, 8)
		}
		t.Regs[16] = sp
		advance()
	case isa.OpPop:
		sp := t.Regs[16]
		v, err := p.AS.ReadUint(sp, 8)
		if err != nil {
			return p.faultAt(pc, sp, mem.AccessRead, err)
		}
		t.Regs[ins.A] = v
		if flow != nil {
			flow.LoadMem(t.ID, ins.A, sp, 8)
		}
		t.Regs[16] = sp + 8
		advance()
	case isa.OpCallR:
		return p.doCall(t, pc, next, t.Regs[ins.A])
	case isa.OpJmpR:
		t.PC = t.Regs[ins.A]
		t.Instructions++
		p.Stats.Instructions++
		p.Clock++
	case isa.OpNot:
		t.Regs[ins.A] = ^t.Regs[ins.A]
		advance()
	case isa.OpNeg:
		t.Regs[ins.A] = -t.Regs[ins.A]
		advance()

	case isa.OpMovRR:
		t.Regs[ins.A] = t.Regs[ins.B]
		if flow != nil {
			flow.CopyRegReg(t.ID, ins.A, ins.B)
		}
		advance()
	case isa.OpAddRR, isa.OpSubRR, isa.OpAndRR, isa.OpOrRR, isa.OpXorRR,
		isa.OpShlRR, isa.OpShrRR, isa.OpMulRR:
		t.Regs[ins.A] = aluOp(ins.Op, t.Regs[ins.A], t.Regs[ins.B])
		if flow != nil {
			flow.CombineReg(t.ID, ins.A, ins.B)
		}
		advance()
	case isa.OpDivRR:
		if t.Regs[ins.B] == 0 {
			return &Exception{Code: ExcDivideByZero, PC: pc}
		}
		t.Regs[ins.A] /= t.Regs[ins.B]
		if flow != nil {
			flow.CombineReg(t.ID, ins.A, ins.B)
		}
		advance()
	case isa.OpCmpRR:
		setCmpFlags(t, t.Regs[ins.A], t.Regs[ins.B])
		advance()
	case isa.OpTestRR:
		setTestFlags(t, t.Regs[ins.A], t.Regs[ins.B])
		advance()

	case isa.OpMovRI:
		t.Regs[ins.A] = ins.Imm
		if flow != nil {
			flow.SetRegImm(t.ID, ins.A)
		}
		advance()
	case isa.OpAddRI, isa.OpSubRI, isa.OpAndRI, isa.OpOrRI, isa.OpXorRI,
		isa.OpShlRI, isa.OpShrRI, isa.OpMulRI:
		t.Regs[ins.A] = aluOp(riToRR(ins.Op), t.Regs[ins.A], uint64(int64(ins.Disp)))
		advance()
	case isa.OpCmpRI:
		setCmpFlags(t, t.Regs[ins.A], uint64(int64(ins.Disp)))
		advance()
	case isa.OpTestRI:
		setTestFlags(t, t.Regs[ins.A], uint64(int64(ins.Disp)))
		advance()
	case isa.OpLea:
		t.Regs[ins.A] = next + uint64(int64(ins.Disp))
		if flow != nil {
			flow.SetRegImm(t.ID, ins.A)
		}
		advance()

	case isa.OpLoad1, isa.OpLoad2, isa.OpLoad4, isa.OpLoad8:
		sz := ins.LoadSize()
		addr := t.Regs[ins.B] + uint64(int64(ins.Disp))
		if exc := p.injectedMemFault(pc, addr, mem.AccessRead); exc != nil {
			return exc
		}
		v, err := p.AS.ReadUint(addr, sz)
		if err != nil {
			return p.faultAt(pc, addr, mem.AccessRead, err)
		}
		t.Regs[ins.A] = v
		if flow != nil {
			flow.LoadMem(t.ID, ins.A, addr, sz)
		}
		advance()
	case isa.OpStore1, isa.OpStore2, isa.OpStore4, isa.OpStore8:
		sz := ins.StoreSize()
		addr := t.Regs[ins.A] + uint64(int64(ins.Disp))
		if exc := p.injectedMemFault(pc, addr, mem.AccessWrite); exc != nil {
			return exc
		}
		if err := p.AS.WriteUint(addr, sz, t.Regs[ins.B]); err != nil {
			return p.faultAt(pc, addr, mem.AccessWrite, err)
		}
		if flow != nil {
			flow.StoreMem(t.ID, ins.B, addr, sz)
		}
		advance()

	case isa.OpJmp:
		t.PC = next + uint64(int64(ins.Disp))
		t.Instructions++
		p.Stats.Instructions++
		p.Clock++
	case isa.OpJz, isa.OpJnz, isa.OpJl, isa.OpJge, isa.OpJle, isa.OpJg, isa.OpJb, isa.OpJae:
		target := next
		if condTaken(ins.Op, t) {
			target = next + uint64(int64(ins.Disp))
		}
		t.PC = target
		t.Instructions++
		p.Stats.Instructions++
		p.Clock++
	case isa.OpCall:
		return p.doCall(t, pc, next, next+uint64(int64(ins.Disp)))
	case isa.OpCallI:
		return p.doCallImport(t, pc, next, uint32(ins.Disp))
	case isa.OpRaise:
		return &Exception{Code: isa.DispToCode(ins.Disp), PC: pc}

	default:
		return &Exception{Code: ExcIllegalInstruction, PC: pc}
	}
	return nil
}

// doCall pushes the return address and transfers to target.
func (p *Process) doCall(t *Thread, pc, retPC, target uint64) *Exception {
	sp := t.Regs[16] - 8
	if err := p.AS.WriteUint(sp, 8, retPC); err != nil {
		return p.faultAt(pc, sp, mem.AccessWrite, err)
	}
	if p.Flow != nil {
		p.Flow.ClearMem(sp, 8)
	}
	t.Regs[16] = sp
	t.frames = append(t.frames, Frame{FuncEntry: target, SPAtEntry: sp, RetPC: retPC})
	if p.Tracer != nil {
		p.Tracer.OnCall(t, target, retPC)
	}
	t.PC = target
	t.Instructions++
	p.Stats.Instructions++
	p.Clock++
	return nil
}

// doCallImport resolves an import slot: native APIs are executed in place;
// code imports behave like a direct call.
func (p *Process) doCallImport(t *Thread, pc, retPC uint64, slot uint32) *Exception {
	mod, ok := p.FindModule(pc)
	if !ok || int(slot) >= len(mod.ImportAddrs) {
		return &Exception{Code: ExcIllegalInstruction, PC: pc}
	}
	target := mod.ImportAddrs[slot]
	if target&bin.NativeImportBit == 0 {
		return p.doCall(t, pc, retPC, target)
	}
	id := uint32(target &^ bin.NativeImportBit)
	if p.API == nil {
		return &Exception{Code: ExcIllegalInstruction, PC: pc}
	}
	t.PC = retPC
	t.Instructions++
	p.Stats.Instructions++
	p.Clock++
	p.Stats.APICalls++
	if p.Tracer != nil {
		p.Tracer.OnAPICall(t, pc, id)
	}
	if p.Flow != nil {
		// The API produces a fresh return value in R0.
		p.Flow.SetRegImm(t.ID, isa.R0)
	}
	if exc := p.API.Call(p, t, id); exc != nil {
		// The API faulted in its user-mode stub; the exception is
		// attributed to the call site, exactly where the frame-based
		// handler search would land after unwinding the stub frame.
		excAt := *exc
		excAt.PC = pc
		t.PC = pc // dispatch relative to the call site
		return &excAt
	}
	return nil
}

// injectedMemFault consults the fault plan at a load/store site, keyed by
// the virtual clock — unique per retired instruction, so decisions are
// identical across schedules and worker counts. An injected fault is an
// unmapped access violation: exactly the class the analyzed handlers and
// the paper's countermeasures care about.
func (p *Process) injectedMemFault(pc, addr uint64, access mem.Access) *Exception {
	fp := p.FaultPlan
	if fp == nil {
		return nil
	}
	site := faultinject.SiteVMLoad
	if access == mem.AccessWrite {
		site = faultinject.SiteVMStore
	}
	if !fp.Should(site, p.Clock) {
		return nil
	}
	p.Stats.FaultsInjected++
	return &Exception{Code: ExcAccessViolation, Addr: addr, PC: pc, Access: access, Unmapped: true}
}

// memFault converts a mem.Fault from instruction fetch into an exception.
func (p *Process) memFault(pc uint64, err error) *Exception {
	var f *mem.Fault
	if errors.As(err, &f) {
		return &Exception{Code: ExcAccessViolation, Addr: f.Addr, PC: pc, Access: f.Access, Unmapped: f.Unmapped}
	}
	return &Exception{Code: ExcAccessViolation, Addr: pc, PC: pc, Access: mem.AccessExec, Unmapped: true}
}

// faultAt converts a data-access error into an access violation exception.
func (p *Process) faultAt(pc, addr uint64, access mem.Access, err error) *Exception {
	var f *mem.Fault
	if errors.As(err, &f) {
		return &Exception{Code: ExcAccessViolation, Addr: f.Addr, PC: pc, Access: f.Access, Unmapped: f.Unmapped}
	}
	return &Exception{Code: ExcAccessViolation, Addr: addr, PC: pc, Access: access, Unmapped: true}
}

func aluOp(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.OpAddRR:
		return a + b
	case isa.OpSubRR:
		return a - b
	case isa.OpAndRR:
		return a & b
	case isa.OpOrRR:
		return a | b
	case isa.OpXorRR:
		return a ^ b
	case isa.OpShlRR:
		return a << (b & 63)
	case isa.OpShrRR:
		return a >> (b & 63)
	case isa.OpMulRR:
		return a * b
	default:
		return 0
	}
}

func riToRR(op isa.Op) isa.Op {
	switch op {
	case isa.OpAddRI:
		return isa.OpAddRR
	case isa.OpSubRI:
		return isa.OpSubRR
	case isa.OpAndRI:
		return isa.OpAndRR
	case isa.OpOrRI:
		return isa.OpOrRR
	case isa.OpXorRI:
		return isa.OpXorRR
	case isa.OpShlRI:
		return isa.OpShlRR
	case isa.OpShrRI:
		return isa.OpShrRR
	case isa.OpMulRI:
		return isa.OpMulRR
	default:
		return op
	}
}

func setCmpFlags(t *Thread, a, b uint64) {
	t.flagZ = a == b
	t.flagL = int64(a) < int64(b)
	t.flagB = a < b
}

func setTestFlags(t *Thread, a, b uint64) {
	t.flagZ = a&b == 0
	t.flagL = false
	t.flagB = false
}

func condTaken(op isa.Op, t *Thread) bool {
	switch op {
	case isa.OpJz:
		return t.flagZ
	case isa.OpJnz:
		return !t.flagZ
	case isa.OpJl:
		return t.flagL
	case isa.OpJge:
		return !t.flagL
	case isa.OpJle:
		return t.flagL || t.flagZ
	case isa.OpJg:
		return !t.flagL && !t.flagZ
	case isa.OpJb:
		return t.flagB
	case isa.OpJae:
		return !t.flagB
	default:
		return false
	}
}
