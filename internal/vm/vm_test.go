package vm

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/mem"
)

// buildProc loads the image built by fill into a fresh process.
func buildProc(t *testing.T, platform Platform, fill func(b *asm.Builder)) *Process {
	t.Helper()
	b := asm.NewBuilder("test.exe", bin.KindExecutable)
	fill(b)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(Config{Platform: platform, Seed: 1234})
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	return p
}

// runMain starts the executable and runs it to completion (or idleness).
func runMain(t *testing.T, p *Process, args ...uint64) RunResult {
	t.Helper()
	if _, err := p.Start(args...); err != nil {
		t.Fatal(err)
	}
	return p.RunUntilIdle(10_000_000)
}

func TestArithmeticProgram(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 6).
			MovRI(isa.R2, 7).
			MulRR(isa.R1, isa.R2). // 42
			AddRI(isa.R1, 8).      // 50
			SubRI(isa.R1, 20).     // 30
			ShlRI(isa.R1, 1).      // 60
			ShrRI(isa.R1, 2).      // 15
			XorRI(isa.R1, 0xFF).   // 240
			AndRI(isa.R1, 0xF0).   // 240
			OrRI(isa.R1, 0x0F).    // 255
			MovRR(isa.R0, isa.R1).
			Halt().
			EndFunc()
	})
	res := runMain(t, p)
	if res.State != ProcExited {
		t.Fatalf("state = %v, crash = %v", res.State, p.Crash)
	}
	if p.ExitCode != 255 {
		t.Errorf("exit code = %d, want 255", p.ExitCode)
	}
}

func TestDivAndNegNot(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 100).
			MovRI(isa.R2, 7).
			DivRR(isa.R1, isa.R2). // 14
			Neg(isa.R1).           // -14
			Not(isa.R1).           // 13
			MovRR(isa.R0, isa.R1).
			Halt().
			EndFunc()
	})
	runMain(t, p)
	if p.ExitCode != 13 {
		t.Errorf("exit code = %d, want 13", p.ExitCode)
	}
}

func TestLoopAndConditionals(t *testing.T) {
	// Sum 1..10 with a loop.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0).  // sum
			MovRI(isa.R2, 1).  // i
			MovRI(isa.R3, 10). // limit
			Label("loop").
			CmpRR(isa.R2, isa.R3).
			Jg("done").
			AddRR(isa.R1, isa.R2).
			AddRI(isa.R2, 1).
			Jmp("loop").
			Label("done").
			MovRR(isa.R0, isa.R1).
			Halt().
			EndFunc()
	})
	runMain(t, p)
	if p.ExitCode != 55 {
		t.Errorf("sum = %d, want 55", p.ExitCode)
	}
}

func TestUnsignedConditionals(t *testing.T) {
	// -1 (as unsigned max) is above 5: JB not taken, JAE taken.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, ^uint64(0)).
			CmpRI(isa.R1, 5).
			Jb("below").
			MovRI(isa.R0, 1).
			Halt().
			Label("below").
			MovRI(isa.R0, 2).
			Halt().
			EndFunc()
	})
	runMain(t, p)
	if p.ExitCode != 1 {
		t.Errorf("exit = %d, want 1 (jb over unsigned max not taken)", p.ExitCode)
	}
}

func TestCallRetAndStack(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 20).
			Call("double").
			MovRR(isa.R0, isa.R1).
			Halt().
			EndFunc()
		b.Func("double").
			Push(isa.R2).
			MovRI(isa.R2, 2).
			MulRR(isa.R1, isa.R2).
			Pop(isa.R2).
			Ret().
			EndFunc()
	})
	runMain(t, p)
	if p.ExitCode != 40 {
		t.Errorf("exit = %d, want 40", p.ExitCode)
	}
}

func TestCallRegister(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			LeaCode(isa.R5, "setter").
			CallR(isa.R5).
			Halt().
			EndFunc()
		b.Func("setter").
			MovRI(isa.R0, 77).
			Ret().
			EndFunc()
	})
	runMain(t, p)
	if p.ExitCode != 77 {
		t.Errorf("exit = %d, want 77", p.ExitCode)
	}
}

func TestDataAccess(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			LeaData(isa.R1, "value").
			Load(8, isa.R0, isa.R1, 0).
			LeaData(isa.R2, "slot").
			Store(8, isa.R2, 0, isa.R0).
			Load(4, isa.R0, isa.R2, 0).
			Halt().
			EndFunc()
		b.DataU64("value", 0x1_0000_0042)
		b.BSS("slot", 8)
	})
	runMain(t, p)
	if p.ExitCode != 0x42 {
		t.Errorf("exit = %#x, want 0x42 (load4 truncates)", p.ExitCode)
	}
}

func TestUnhandledFaultCrashesWindows(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xdead0000).
			Load(8, isa.R0, isa.R1, 0).
			Halt().
			EndFunc()
	})
	res := runMain(t, p)
	if res.State != ProcCrashed || p.Crash == nil {
		t.Fatalf("state = %v, want crash", res.State)
	}
	if p.Crash.Exc.Code != ExcAccessViolation || p.Crash.Exc.Addr != 0xdead0000 {
		t.Errorf("crash = %v", p.Crash)
	}
	if !p.Crash.Exc.Unmapped {
		t.Error("fault should be unmapped")
	}
}

func TestUnhandledFaultCrashesLinux(t *testing.T) {
	p := buildProc(t, PlatformLinux, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0x1000).
			Store(8, isa.R1, 0, isa.R0).
			Halt().
			EndFunc()
	})
	res := runMain(t, p)
	if res.State != ProcCrashed {
		t.Fatalf("state = %v, want crash", res.State)
	}
}

func TestDivideByZeroException(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 10).
			MovRI(isa.R2, 0).
			DivRR(isa.R1, isa.R2).
			Halt().
			EndFunc()
	})
	runMain(t, p)
	if p.Crash == nil || p.Crash.Exc.Code != ExcDivideByZero {
		t.Errorf("crash = %v, want divide by zero", p.Crash)
	}
}

func TestSEHCatchAll(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("try").
			Load(8, isa.R0, isa.R1, 0).
			Label("try_end").
			MovRI(isa.R0, 1). // probe succeeded
			Halt().
			Label("handler").
			MovRI(isa.R0, 2). // probe faulted, handled
			Halt().
			EndFunc()
		b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
	})
	res := runMain(t, p)
	if res.State != ProcExited {
		t.Fatalf("state = %v, crash = %v", res.State, p.Crash)
	}
	if p.ExitCode != 2 {
		t.Errorf("exit = %d, want 2 (handler path)", p.ExitCode)
	}
	if p.Stats.Faults != 1 || p.Stats.FaultsHandled != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestSEHFilterAcceptsAV(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("try").
			Load(8, isa.R0, isa.R1, 0).
			Label("try_end").
			MovRI(isa.R0, 1).
			Halt().
			Label("handler").
			MovRI(isa.R0, 2).
			Halt().
			EndFunc()
		// Filter: accept only access violations.
		b.Func("filter").
			MovRI(isa.R3, 0xC0000005).
			CmpRR(isa.R1, isa.R3).
			Jz("accept").
			MovRI(isa.R0, 0). // continue search
			Ret().
			Label("accept").
			MovRI(isa.R0, 1). // execute handler
			Ret().
			EndFunc()
		b.Guard("main", "try", "try_end", "filter", "handler")
	})
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 2 {
		t.Errorf("state=%v exit=%d crash=%v, want handled exit 2", p.State, p.ExitCode, p.Crash)
	}
}

func TestSEHFilterRejects(t *testing.T) {
	// Filter only accepts divide-by-zero; AV crashes the process.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("try").
			Load(8, isa.R0, isa.R1, 0).
			Label("try_end").
			Halt().
			Label("handler").
			Halt().
			EndFunc()
		b.Func("filter").
			MovRI(isa.R3, 0xC0000094).
			CmpRR(isa.R1, isa.R3).
			Jz("accept").
			MovRI(isa.R0, 0).
			Ret().
			Label("accept").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Guard("main", "try", "try_end", "filter", "handler")
	})
	res := runMain(t, p)
	if res.State != ProcCrashed {
		t.Errorf("state = %v, want crash (filter rejected)", res.State)
	}
}

func TestSEHGuardInCallerCatchesCalleeFault(t *testing.T) {
	// The guarded region covers a CALL; the fault happens in the callee.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Label("try").
			Call("deref").
			Label("try_end").
			MovRI(isa.R0, 1).
			Halt().
			Label("handler").
			MovRI(isa.R0, 2).
			Halt().
			EndFunc()
		b.Func("deref").
			MovRI(isa.R1, 0xbad0000).
			Load(8, isa.R0, isa.R1, 0).
			Ret().
			EndFunc()
		b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
	})
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 2 {
		t.Errorf("state=%v exit=%d, want handler in caller frame", p.State, p.ExitCode)
	}
}

func TestSEHRaiseSoftwareException(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Label("try").
			Raise(0xE0001234).
			Label("try_end").
			Halt().
			Label("handler").
			// R0 holds the exception code on handler entry.
			Halt().
			EndFunc()
		b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
	})
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 0xE0001234 {
		t.Errorf("exit = %#x, want exception code in R0", p.ExitCode)
	}
}

func TestSEHNestedScopesInnermostFirst(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("outer").
			Label("inner").
			Load(8, isa.R0, isa.R1, 0).
			Label("inner_end").
			Nop().
			Label("outer_end").
			Halt().
			Label("inner_handler").
			MovRI(isa.R0, 10).
			Halt().
			Label("outer_handler").
			MovRI(isa.R0, 20).
			Halt().
			EndFunc()
		b.Guard("main", "outer", "outer_end", asm.CatchAll, "outer_handler")
		b.Guard("main", "inner", "inner_end", asm.CatchAll, "inner_handler")
	})
	runMain(t, p)
	if p.ExitCode != 10 {
		t.Errorf("exit = %d, want inner handler (10)", p.ExitCode)
	}
}

func TestLinuxSignalHandler(t *testing.T) {
	p := buildProc(t, PlatformLinux, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Load(8, isa.R5, isa.R1, 0). // faults; handler runs; resumes after
			LeaData(isa.R2, "flag").    // registers are restored on sigreturn,
			Load(8, isa.R0, isa.R2, 0). // so the handler communicates via memory
			Halt().
			EndFunc()
		b.Func("segv_handler").
			MovRI(isa.R4, 99).
			LeaData(isa.R5, "flag").
			Store(8, isa.R5, 0, isa.R4).
			Ret().
			EndFunc()
		b.BSS("flag", 8)
	})
	mod := p.Modules()[0]
	off, ok := mod.Image.Export("segv_handler")
	_ = ok
	// Register the handler directly (the kernel's sigaction does this in
	// integration tests).
	sym, _ := mod.Image.SymbolAt(0)
	_ = sym
	for _, s := range mod.Image.Symbols {
		if s.Name == "segv_handler" {
			off = s.Offset
		}
	}
	p.SignalHandlers[SigSegv] = mod.VA(off)
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 99 {
		t.Errorf("state=%v exit=%d crash=%v, want handler-set 99", p.State, p.ExitCode, p.Crash)
	}
	if p.Stats.FaultsHandled != 1 {
		t.Errorf("FaultsHandled = %d, want 1", p.Stats.FaultsHandled)
	}
}

func TestMappedOnlyAVPolicy(t *testing.T) {
	build := func(policy Policy) *Process {
		b := asm.NewBuilder("test.exe", bin.KindExecutable)
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("try").
			Load(8, isa.R0, isa.R1, 0).
			Label("try_end").
			MovRI(isa.R0, 1).
			Halt().
			Label("handler").
			MovRI(isa.R0, 2).
			Halt().
			EndFunc()
		b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
		img, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		p := NewProcess(Config{Platform: PlatformWindows, Seed: 5, Policy: policy})
		if _, err := p.LoadImage(img); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Without the policy the catch-all handles the unmapped probe.
	p := build(Policy{})
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 2 {
		t.Fatalf("baseline: state=%v exit=%d", p.State, p.ExitCode)
	}

	// With the policy the same probe is fatal.
	p = build(Policy{MappedOnlyAV: true})
	runMain(t, p)
	if p.State != ProcCrashed {
		t.Errorf("mapped-only: state=%v, want crash", p.State)
	}
}

func TestMappedOnlyAVStillAllowsGuardPageFaults(t *testing.T) {
	// A fault on a mapped-but-unreadable page (guard-page style, as in the
	// Firefox optimization) must remain catchable under the policy.
	b := asm.NewBuilder("test.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		LeaData(isa.R1, "guarded").
		Label("try").
		Store(8, isa.R1, 0, isa.R2).
		Label("try_end").
		MovRI(isa.R0, 1).
		Halt().
		Label("handler").
		MovRI(isa.R0, 2).
		Halt().
		EndFunc()
	b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
	b.BSS("guarded", 8)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(Config{Platform: PlatformWindows, Seed: 5, Policy: Policy{MappedOnlyAV: true}})
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	// Revoke write permission on the BSS page: mapped but protected.
	bssVA := mod.VA(img.BSSStart())
	if err := p.AS.Protect(bssVA&^0xFFF, 0x1000, 0); err != nil {
		t.Fatal(err)
	}
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 2 {
		t.Errorf("state=%v exit=%d crash=%v, want guard fault handled", p.State, p.ExitCode, p.Crash)
	}
}

func TestMultipleThreadsInterleave(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R0, 0).
			Halt().
			EndFunc()
		b.Func("worker").
			// Increment counters[R2] (per-thread slot) R1 times; a
			// shared cell would race under preemption, exactly as
			// on real hardware.
			LeaData(isa.R3, "counters").
			AddRR(isa.R3, isa.R2).
			Label("loop").
			Load(8, isa.R4, isa.R3, 0).
			AddRI(isa.R4, 1).
			Store(8, isa.R3, 0, isa.R4).
			SubRI(isa.R1, 1).
			TestRR(isa.R1, isa.R1).
			Jnz("loop").
			Ret().
			EndFunc()
		b.BSS("counters", 24)
		b.Export("worker", "worker")
		b.Export("counters", "counters")
	})
	mod := p.Modules()[0]
	workerOff, _ := mod.Image.Export("worker")
	countersOff, _ := mod.Image.Export("counters")
	for i := 0; i < 3; i++ {
		if _, err := p.StartThread("w", mod.VA(workerOff), 100, uint64(i*8)); err != nil {
			t.Fatal(err)
		}
	}
	p.RunUntilIdle(1_000_000)
	var total uint64
	for i := 0; i < 3; i++ {
		v, err := p.AS.ReadUint(mod.VA(countersOff)+uint64(i*8), 8)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if total != 300 {
		t.Errorf("total = %d, want 300", total)
	}
}

func TestThreadCrashKillsProcessWindows(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Label("spin").
			Yield().
			Jmp("spin").
			EndFunc()
		b.Func("bad").
			MovRI(isa.R1, 0xbad0000).
			Load(8, isa.R0, isa.R1, 0).
			Ret().
			EndFunc()
		b.Export("bad", "bad")
	})
	mod := p.Modules()[0]
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	off, _ := mod.Image.Export("bad")
	if _, err := p.StartThread("bad", mod.VA(off)); err != nil {
		t.Fatal(err)
	}
	res := p.RunUntilIdle(1_000_000)
	if res.State != ProcCrashed {
		t.Errorf("state = %v, want crashed (hard crash policy)", res.State)
	}
}

func TestBlockAndWake(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Label("spin").
			Yield().
			Jmp("spin").
			EndFunc()
	})
	main, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	var resumed bool
	main.Block(0, func(timedOut bool) {
		resumed = true
		if timedOut {
			t.Error("wake reported timeout for explicit wake")
		}
	})
	res := p.Run(1000)
	if res.State != ProcIdle {
		t.Fatalf("state = %v, want idle", res.State)
	}
	main.Wake(false)
	if !resumed {
		t.Error("resume continuation not called")
	}
	if res := p.Run(1000); res.State != ProcRunning && res.State != ProcIdle {
		t.Errorf("state after wake = %v", res.State)
	}
}

func TestTimedBlockFiresByVirtualClock(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Label("spin").
			Yield().
			Jmp("spin").
			EndFunc()
	})
	main, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	var timedOut bool
	wakeAt := p.Clock + 5000
	main.Block(wakeAt, func(to bool) { timedOut = to })
	p.Run(100_000)
	if !timedOut {
		t.Fatal("timer never fired")
	}
	if p.Clock < wakeAt {
		t.Errorf("clock %d < wakeAt %d", p.Clock, wakeAt)
	}
}

func TestRunBudgetRespected(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Label("spin").
			Jmp("spin").
			EndFunc()
	})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	res := p.Run(1000)
	if res.State != ProcRunning {
		t.Errorf("state = %v, want running (budget exhausted)", res.State)
	}
	if res.Ticks != 1000 {
		t.Errorf("ticks = %d, want exactly 1000", res.Ticks)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, uint64) {
		p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
			b.Func("main").Entry("main").
				MovRI(isa.R1, 1000).
				Label("loop").
				SubRI(isa.R1, 1).
				TestRR(isa.R1, isa.R1).
				Jnz("loop").
				Halt().
				EndFunc()
		})
		runMain(t, p)
		return p.Clock, p.Modules()[0].Base
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Errorf("nondeterministic: clocks %d/%d bases %#x/%#x", c1, c2, b1, b2)
	}
}

func TestCrossModuleCall(t *testing.T) {
	// lib.dll exports a function; main.exe imports and calls it.
	lib := asm.NewBuilder("lib.dll", bin.KindLibrary)
	lib.Func("answer").
		MovRI(isa.R0, 4242).
		Ret().
		EndFunc()
	lib.Export("answer", "answer")
	libImg, err := lib.Build()
	if err != nil {
		t.Fatal(err)
	}

	main := asm.NewBuilder("main.exe", bin.KindExecutable)
	main.Func("main").Entry("main").
		CallImport("lib.dll", "answer").
		Halt().
		EndFunc()
	mainImg, err := main.Build()
	if err != nil {
		t.Fatal(err)
	}

	p := NewProcess(Config{Platform: PlatformWindows, Seed: 9})
	if _, err := p.LoadImage(libImg); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadImage(mainImg); err != nil {
		t.Fatal(err)
	}
	runMain(t, p)
	if p.ExitCode != 4242 {
		t.Errorf("exit = %d, want 4242", p.ExitCode)
	}
}

func TestSymbolAt(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").Halt().EndFunc()
	})
	mod := p.Modules()[0]
	got := p.SymbolAt(mod.VA(0))
	if got != "test.exe!main+0x0" {
		t.Errorf("SymbolAt = %q", got)
	}
	if got := p.SymbolAt(0x1); got != "0x1" {
		t.Errorf("SymbolAt outside modules = %q", got)
	}
}

func TestExceptionString(t *testing.T) {
	e := Exception{Code: ExcAccessViolation, Addr: 0x1234, PC: 0x10, Unmapped: true}
	if got := e.String(); got == "" {
		t.Error("empty exception string")
	}
	if (Exception{Code: ExcAccessViolation}).Signal() != SigSegv {
		t.Error("AV should map to SIGSEGV")
	}
	if (Exception{Code: ExcDivideByZero}).Signal() != SigFpe {
		t.Error("div-zero should map to SIGFPE")
	}
	if (Exception{Code: ExcIllegalInstruction}).Signal() != SigIll {
		t.Error("illegal should map to SIGILL")
	}
}

func TestStartErrors(t *testing.T) {
	p := NewProcess(Config{Platform: PlatformWindows, Seed: 1})
	if _, err := p.Start(); err == nil {
		t.Error("Start with no executable should fail")
	}
	lib := asm.NewBuilder("l.dll", bin.KindLibrary)
	lib.Func("f").Ret().EndFunc()
	img, err := lib.Build()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartThread("x", mod.VA(0), 1, 2, 3, 4, 5, 6); err == nil {
		t.Error("StartThread with 6 args should fail")
	}
}

func TestLoadImageUnresolvedImport(t *testing.T) {
	b := asm.NewBuilder("t.exe", bin.KindExecutable)
	b.Func("main").Entry("main").CallImport("missing.dll", "f").Halt().EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(Config{Platform: PlatformWindows, Seed: 1})
	if _, err := p.LoadImage(img); err == nil {
		t.Error("import from unloaded module should fail")
	}
}

func TestVectoredExceptionHandler(t *testing.T) {
	// A VEH registered at run time handles the fault with no scope-table
	// entry anywhere — the construct the static pipeline cannot see.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Load(8, isa.R5, isa.R1, 0). // fault; VEH resumes past it
			LeaData(isa.R2, "flag").
			Load(8, isa.R0, isa.R2, 0).
			Halt().
			EndFunc()
		// VEH: accept only access violations; record in "flag";
		// continue execution.
		b.Func("veh").
			MovRI(isa.R3, 0xC0000005).
			CmpRR(isa.R1, isa.R3).
			Jnz("veh_pass").
			MovRI(isa.R4, 7).
			LeaData(isa.R5, "flag").
			Store(8, isa.R5, 0, isa.R4).
			MovRI(isa.R0, 0).
			Not(isa.R0). // -1: continue execution
			Ret().
			Label("veh_pass").
			MovRI(isa.R0, 0). // continue search
			Ret().
			EndFunc()
		b.BSS("flag", 8)
		b.Export("veh", "veh")
	})
	mod := p.Modules()[0]
	vehOff, _ := mod.Image.Export("veh")
	p.AddVEHandler(mod.VA(vehOff))
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 7 {
		t.Errorf("state=%v exit=%d crash=%v, want VEH-handled 7", p.State, p.ExitCode, p.Crash)
	}
	if got := p.VEHandlers(); len(got) != 1 || got[0] != mod.VA(vehOff) {
		t.Errorf("VEHandlers = %#x", got)
	}
}

func TestVEHContinueSearchFallsThroughToScopes(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("try").
			Load(8, isa.R5, isa.R1, 0).
			Label("try_end").
			MovRI(isa.R0, 1).
			Halt().
			Label("handler").
			MovRI(isa.R0, 2).
			Halt().
			EndFunc()
		b.Func("veh").
			MovRI(isa.R0, 0). // always continue search
			Ret().
			EndFunc()
		b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
		b.Export("veh", "veh")
	})
	mod := p.Modules()[0]
	vehOff, _ := mod.Image.Export("veh")
	p.AddVEHandler(mod.VA(vehOff))
	runMain(t, p)
	if p.ExitCode != 2 {
		t.Errorf("exit = %d, want scope handler (2)", p.ExitCode)
	}
}

func TestThreadOnStack(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").Halt().EndFunc()
	})
	th, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !th.OnStack(th.Reg(isa.SP)) {
		t.Error("SP not on stack")
	}
	if th.OnStack(0x1) {
		t.Error("0x1 reported on stack")
	}
}

func TestExecuteDataSectionFaults(t *testing.T) {
	// W^X: jumping into the (rw-) data section must raise an exec fault.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			LeaData(isa.R1, "blob").
			JmpR(isa.R1).
			Halt().
			EndFunc()
		b.Data("blob", []byte{0x01, 0x02, 0x03, 0x04})
	})
	runMain(t, p)
	if p.State != ProcCrashed {
		t.Fatalf("state = %v, want crash", p.State)
	}
	if p.Crash.Exc.Code != ExcAccessViolation {
		t.Errorf("code = %#x", p.Crash.Exc.Code)
	}
	if p.Crash.Exc.Unmapped {
		t.Error("data page is mapped; fault must be a protection fault")
	}
}

func TestStackExhaustionCrashes(t *testing.T) {
	// Unbounded recursion runs off the mapped stack and crashes.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Call("recurse").
			Halt().
			EndFunc()
		b.Func("recurse").
			Push(isa.R1).
			Call("recurse").
			Pop(isa.R1).
			Ret().
			EndFunc()
	})
	res := runMain(t, p)
	if res.State != ProcCrashed {
		t.Fatalf("state = %v, want crash", res.State)
	}
	if p.Crash.Exc.Access != mem.AccessWrite {
		t.Errorf("access = %v, want write (stack push)", p.Crash.Exc.Access)
	}
}

func TestCorruptedReturnAddressCrashes(t *testing.T) {
	// Overwriting the saved return address with garbage sends RET into
	// unmapped memory: an exec fault at the bogus PC.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			Call("victim").
			Halt().
			EndFunc()
		b.Func("victim").
			MovRI(isa.R1, 0x41414141).
			Store(8, isa.SP, 0, isa.R1). // smash [sp] = return address
			Ret().
			EndFunc()
	})
	runMain(t, p)
	if p.State != ProcCrashed {
		t.Fatalf("state = %v, want crash", p.State)
	}
	if p.Crash.Exc.PC != 0x41414141 {
		t.Errorf("crash pc = %#x, want hijacked 0x41414141", p.Crash.Exc.PC)
	}
}

func TestFilterFaultFallsThroughToNextScope(t *testing.T) {
	// A filter that itself faults must be treated as continue-search, so
	// the outer catch-all still handles the exception.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("outer").
			Label("inner").
			Load(8, isa.R0, isa.R1, 0).
			Label("inner_end").
			Nop().
			Label("outer_end").
			Halt().
			Label("inner_handler").
			MovRI(isa.R0, 10).
			Halt().
			Label("outer_handler").
			MovRI(isa.R0, 20).
			Halt().
			EndFunc()
		// The inner filter dereferences unmapped memory itself.
		b.Func("bad_filter").
			MovRI(isa.R4, 0xbad1000).
			Load(8, isa.R0, isa.R4, 0).
			Ret().
			EndFunc()
		b.Guard("main", "outer", "outer_end", asm.CatchAll, "outer_handler")
		b.Guard("main", "inner", "inner_end", "bad_filter", "inner_handler")
	})
	runMain(t, p)
	if p.State != ProcExited || p.ExitCode != 20 {
		t.Errorf("state=%v exit=%d, want outer handler (20)", p.State, p.ExitCode)
	}
}

func TestRaiseInsideHandlerEscalates(t *testing.T) {
	// An exception raised inside a handler (not the filter) dispatches
	// again; with no other scope covering the handler, it is fatal.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 0xbad0000).
			Label("try").
			Load(8, isa.R0, isa.R1, 0).
			Label("try_end").
			Halt().
			Label("handler").
			Raise(0xE0000001). // handler throws
			Halt().
			EndFunc()
		b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
	})
	runMain(t, p)
	if p.State != ProcCrashed {
		t.Fatalf("state = %v, want crash", p.State)
	}
	if p.Crash.Exc.Code != 0xE0000001 {
		t.Errorf("crash code = %#x", p.Crash.Exc.Code)
	}
	if p.Stats.FaultsHandled != 1 || p.Stats.Faults != 2 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestProcessAccessors(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").Yield().Halt().EndFunc()
	})
	if _, ok := p.Module("test.exe"); !ok {
		t.Error("Module by name failed")
	}
	if _, ok := p.Module("nope.dll"); ok {
		t.Error("missing module found")
	}
	th, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threads(); len(got) != 1 || got[0] != th {
		t.Errorf("Threads = %v", got)
	}
	if got, ok := p.Thread(th.ID); !ok || got != th {
		t.Errorf("Thread(%d) = %v %v", th.ID, got, ok)
	}
	if _, ok := p.Thread(99); ok {
		t.Error("Thread(99) found")
	}
	th.SetReg(isa.R5, 123)
	if th.Reg(isa.R5) != 123 {
		t.Error("SetReg/Reg mismatch")
	}
	if th.Proc() != p {
		t.Error("Proc backref wrong")
	}
	if th.InFilter() {
		t.Error("fresh thread reported in filter")
	}
	frames := th.Frames()
	if len(frames) != 1 {
		t.Errorf("initial frames = %d", len(frames))
	}
	if PlatformLinux.String() != "linux" || PlatformWindows.String() != "windows" || Platform(9).String() != "platform?" {
		t.Error("platform strings")
	}
	for s := ProcRunning; s <= ProcCrashed; s++ {
		if s.String() == "state?" {
			t.Errorf("state %d unnamed", s)
		}
	}
	ci := &CrashInfo{TID: 1, Exc: Exception{Code: ExcAccessViolation, Addr: 1, PC: 2}, Clock: 3}
	if ci.String() == "" {
		t.Error("empty crash string")
	}
}

func TestCallImportBadSlot(t *testing.T) {
	// A CALLI with an out-of-range slot is an illegal instruction.
	b := asm.NewBuilder("t.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		CallImport("", "OnlySlot").
		Halt().
		EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the encoded slot index to 7 (out of range).
	for off := 0; off < len(img.Text); {
		ins, n, err := isa.Decode(img.Text[off:])
		if err != nil {
			t.Fatal(err)
		}
		if ins.Op == isa.OpCallI {
			ins.Disp = 7
			patched, err := isa.EncodeAll([]isa.Instruction{ins})
			if err != nil {
				t.Fatal(err)
			}
			copy(img.Text[off:], patched)
		}
		off += n
	}
	p := NewProcess(Config{Platform: PlatformWindows, Seed: 3})
	p.API = slotAPI{}
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	runMain(t, p)
	if p.State != ProcCrashed || p.Crash.Exc.Code != ExcIllegalInstruction {
		t.Errorf("state=%v crash=%v, want illegal instruction", p.State, p.Crash)
	}
}

type slotAPI struct{}

func (slotAPI) Resolve(string) (uint32, error) { return 1, nil }

func (slotAPI) Call(p *Process, t *Thread, id uint32) *Exception {
	t.SetReg(0, 0)
	return nil
}

func TestSyscallWithoutHandlerIsIllegal(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").Syscall().Halt().EndFunc()
	})
	runMain(t, p)
	if p.State != ProcCrashed || p.Crash.Exc.Code != ExcIllegalInstruction {
		t.Errorf("state=%v crash=%v", p.State, p.Crash)
	}
}

func TestExitSetsAllThreadsDone(t *testing.T) {
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").Halt().EndFunc()
		b.Func("spin").Label("s").Yield().Jmp("s").EndFunc()
		b.Export("spin", "spin")
	})
	mod := p.Modules()[0]
	off, _ := mod.Image.Export("spin")
	if _, err := p.StartThread("w", mod.VA(off)); err != nil {
		t.Fatal(err)
	}
	runMain(t, p)
	for _, th := range p.Threads() {
		if th.State != ThreadDone {
			t.Errorf("thread %d state = %v after exit", th.ID, th.State)
		}
	}
}

func TestJleJgeBoundaries(t *testing.T) {
	// Exercise every remaining conditional at its boundary value.
	p := buildProc(t, PlatformWindows, func(b *asm.Builder) {
		b.Func("main").Entry("main").
			MovRI(isa.R1, 5).
			MovRI(isa.R0, 0).
			CmpRI(isa.R1, 5).
			Jle("a"). // taken (equal)
			Halt().
			Label("a").
			OrRI(isa.R0, 1).
			CmpRI(isa.R1, 5).
			Jge("b"). // taken (equal)
			Halt().
			Label("b").
			OrRI(isa.R0, 2).
			CmpRI(isa.R1, 6).
			Jl("c"). // taken (less)
			Halt().
			Label("c").
			OrRI(isa.R0, 4).
			CmpRI(isa.R1, 4).
			Jg("d"). // taken (greater)
			Halt().
			Label("d").
			OrRI(isa.R0, 8).
			CmpRI(isa.R1, 5).
			Jae("e"). // taken (equal, unsigned)
			Halt().
			Label("e").
			OrRI(isa.R0, 16).
			Halt().
			EndFunc()
	})
	runMain(t, p)
	if p.ExitCode != 31 {
		t.Errorf("conditional checks = %05b, want 11111", p.ExitCode)
	}
}
