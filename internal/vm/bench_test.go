package vm

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
)

// benchLoopProc builds a tight arithmetic+memory loop process.
func benchLoopProc(b *testing.B) *Process {
	b.Helper()
	bb := asm.NewBuilder("bench.exe", bin.KindExecutable)
	bb.Func("main").Entry("main").
		LeaData(isa.R2, "cell").
		Label("loop").
		Load(8, isa.R3, isa.R2, 0).
		AddRI(isa.R3, 1).
		Store(8, isa.R2, 0, isa.R3).
		Jmp("loop").
		EndFunc()
	bb.BSS("cell", 8)
	img, err := bb.Build()
	if err != nil {
		b.Fatal(err)
	}
	p := NewProcess(Config{Platform: PlatformWindows, Seed: 1})
	if _, err := p.LoadImage(img); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkExecLoop measures raw interpreter throughput (one op per
// iteration of b.N ticks).
func BenchmarkExecLoop(b *testing.B) {
	p := benchLoopProc(b)
	b.ResetTimer()
	p.Run(uint64(b.N))
	b.ReportMetric(float64(p.Stats.Instructions)/float64(b.N), "instr/op")
}

// BenchmarkSEHRoundTrip measures one guarded fault + filter evaluation +
// unwind.
func BenchmarkSEHRoundTrip(b *testing.B) {
	bb := asm.NewBuilder("bench.exe", bin.KindExecutable)
	bb.Func("main").Entry("main").
		MovRI(isa.R1, 0xbad0000).
		Label("loop").
		Label("try").
		Load(8, isa.R0, isa.R1, 0).
		Label("try_end").
		Halt().
		Label("handler").
		Jmp("loop").
		EndFunc()
	bb.Func("filter").
		MovRI(isa.R3, 0xC0000005).
		CmpRR(isa.R1, isa.R3).
		Jz("yes").
		MovRI(isa.R0, 0).
		Ret().
		Label("yes").
		MovRI(isa.R0, 1).
		Ret().
		EndFunc()
	bb.Guard("main", "try", "try_end", "filter", "handler")
	img, err := bb.Build()
	if err != nil {
		b.Fatal(err)
	}
	p := NewProcess(Config{Platform: PlatformWindows, Seed: 1})
	if _, err := p.LoadImage(img); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := p.Stats.FaultsHandled
	for p.Stats.FaultsHandled-start < uint64(b.N) {
		p.Run(10_000)
		if !p.Alive() {
			b.Fatal("process died")
		}
	}
}

// BenchmarkProcessBoot measures process creation + image load + start.
func BenchmarkProcessBoot(b *testing.B) {
	bb := asm.NewBuilder("bench.exe", bin.KindExecutable)
	bb.Func("main").Entry("main").Halt().EndFunc()
	img, err := bb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewProcess(Config{Platform: PlatformWindows, Seed: int64(i)})
		if _, err := p.LoadImage(img); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Start(); err != nil {
			b.Fatal(err)
		}
		p.RunUntilIdle(1000)
	}
}
