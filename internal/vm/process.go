package vm

import (
	"fmt"

	"crashresist/internal/bin"
	"crashresist/internal/faultinject"
	"crashresist/internal/mem"
)

// Default process parameters.
const (
	// DefaultQuantum is how many instructions a thread runs before the
	// scheduler rotates to the next runnable thread.
	DefaultQuantum = 64
	// DefaultStackSize is the stack allocated for new threads.
	DefaultStackSize = 64 * 1024
	// arenaLow and arenaHigh bound the user address arena the ASLR
	// allocator places mappings in.
	arenaLow  = 0x0000000100000000
	arenaHigh = 0x0000080000000000
)

// Config parameterizes process creation.
type Config struct {
	Platform Platform
	// Seed drives the ASLR allocator; identical seeds give identical
	// layouts.
	Seed int64
	// Quantum overrides DefaultQuantum when non-zero.
	Quantum int
	// StackSize overrides DefaultStackSize when non-zero.
	StackSize uint64
	Policy    Policy
	// FaultPlan, when non-nil, injects deterministic faults at the
	// emulator's memory-access and exception-dispatch sites.
	FaultPlan *faultinject.Plan
}

// Process is a simulated user-space process.
type Process struct {
	AS    *mem.AddressSpace
	Alloc *mem.Allocator

	Platform Platform
	Policy   Policy

	// Clock is the virtual time in ticks; one instruction = one tick.
	Clock uint64

	// Syscalls handles the SYSCALL instruction (Linux model).
	Syscalls SyscallHandler
	// API handles native imports (Windows model).
	API APIHandler
	// Tracer, if non-nil, observes execution.
	Tracer Tracer
	// Flow, if non-nil, receives data-flow events for taint tracking.
	Flow DataFlow
	// FaultPlan, if non-nil, injects deterministic faults keyed by the
	// virtual clock (see internal/faultinject).
	FaultPlan *faultinject.Plan

	// SignalHandlers maps Linux-model signal numbers to handler
	// addresses, registered via the kernel's sigaction.
	SignalHandlers map[int]uint64

	Stats Stats

	State    ProcState
	ExitCode uint64
	Crash    *CrashInfo

	modules    []*bin.Module
	modsByName map[string]*bin.Module
	threads    []*Thread
	nextTID    int
	quantum    int
	stackSize  uint64
	rrIndex    int
	veh        []uint64
}

// AddVEHandler registers a vectored exception handler (Windows model): the
// function at va is consulted before any frame-based scope search. Vectored
// handlers are registered at run time and leave no static scope-table trace
// — which is why the paper's static pipeline misses primitives built on
// them (§VII-A).
func (p *Process) AddVEHandler(va uint64) { p.veh = append(p.veh, va) }

// VEHandlers returns the registered vectored handlers in registration order.
func (p *Process) VEHandlers() []uint64 {
	out := make([]uint64, len(p.veh))
	copy(out, p.veh)
	return out
}

// NewProcess creates an empty process with a fresh address space.
func NewProcess(cfg Config) *Process {
	quantum := cfg.Quantum
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	stack := cfg.StackSize
	if stack == 0 {
		stack = DefaultStackSize
	}
	as := mem.NewAddressSpace()
	return &Process{
		AS:             as,
		Alloc:          mem.NewAllocator(as, arenaLow, arenaHigh, cfg.Seed),
		Platform:       cfg.Platform,
		Policy:         cfg.Policy,
		FaultPlan:      cfg.FaultPlan,
		SignalHandlers: make(map[int]uint64),
		modsByName:     make(map[string]*bin.Module),
		State:          ProcRunning,
		quantum:        quantum,
		stackSize:      stack,
	}
}

// LoadImage maps an image into the process, resolving module imports against
// already-loaded modules and native imports against the API handler.
func (p *Process) LoadImage(img *bin.Image) (*bin.Module, error) {
	resolver := func(imp bin.Import) (uint64, error) {
		if imp.Module == "" {
			if p.API == nil {
				return 0, fmt.Errorf("no API handler for %s", imp)
			}
			id, err := p.API.Resolve(imp.Symbol)
			if err != nil {
				return 0, err
			}
			return bin.NativeImportBit | uint64(id), nil
		}
		dep, ok := p.modsByName[imp.Module]
		if !ok {
			return 0, fmt.Errorf("module %q not loaded", imp.Module)
		}
		off, ok := dep.Image.Export(imp.Symbol)
		if !ok {
			return 0, fmt.Errorf("module %q does not export %q", imp.Module, imp.Symbol)
		}
		return dep.VA(off), nil
	}
	mod, err := bin.Load(p.AS, p.Alloc, img, resolver)
	if err != nil {
		return nil, err
	}
	p.modules = append(p.modules, mod)
	p.modsByName[img.Name] = mod
	return mod, nil
}

// Modules returns the loaded modules in load order.
func (p *Process) Modules() []*bin.Module {
	out := make([]*bin.Module, len(p.modules))
	copy(out, p.modules)
	return out
}

// Module returns a loaded module by image name.
func (p *Process) Module(name string) (*bin.Module, bool) {
	m, ok := p.modsByName[name]
	return m, ok
}

// FindModule returns the module containing the virtual address.
func (p *Process) FindModule(addr uint64) (*bin.Module, bool) {
	for _, m := range p.modules {
		if m.Contains(addr) {
			return m, true
		}
	}
	return nil, false
}

// SymbolAt resolves an address to "module!symbol+off" for diagnostics.
func (p *Process) SymbolAt(addr uint64) string {
	m, ok := p.FindModule(addr)
	if !ok {
		return fmt.Sprintf("%#x", addr)
	}
	off := m.OffsetOf(addr)
	if sym, ok := m.Image.SymbolAt(off); ok {
		return fmt.Sprintf("%s!%s+%#x", m.Image.Name, sym.Name, off-sym.Offset)
	}
	return fmt.Sprintf("%s+%#x", m.Image.Name, off)
}

// StartThread creates a runnable thread entering at entry with up to five
// arguments in R1..R5 and a freshly mapped stack.
func (p *Process) StartThread(name string, entry uint64, args ...uint64) (*Thread, error) {
	if len(args) > 5 {
		return nil, fmt.Errorf("start thread: too many args (%d)", len(args))
	}
	stackBase, err := p.Alloc.Alloc(p.stackSize, mem.PermRW)
	if err != nil {
		return nil, fmt.Errorf("start thread: stack: %w", err)
	}
	sp := stackBase + p.stackSize - 64
	// Seed the return address so a RET from the entry function exits the
	// thread.
	if err := p.AS.WriteUint(sp, 8, threadExitMagic); err != nil {
		return nil, fmt.Errorf("start thread: seed stack: %w", err)
	}

	t := &Thread{
		ID:        p.nextTID,
		Name:      name,
		PC:        entry,
		State:     ThreadRunnable,
		StackBase: stackBase,
		StackSize: p.stackSize,
		proc:      p,
		frames: []Frame{{
			FuncEntry: entry,
			SPAtEntry: sp,
			RetPC:     threadExitMagic,
		}},
	}
	p.nextTID++
	t.Regs[16] = sp // SP register index
	for i, a := range args {
		t.Regs[1+i] = a
	}
	p.threads = append(p.threads, t)
	return t, nil
}

// Start locates the executable module and starts its main thread at the
// entry point.
func (p *Process) Start(args ...uint64) (*Thread, error) {
	for _, m := range p.modules {
		if m.Image.Kind == bin.KindExecutable {
			t, err := p.StartThread("main", m.VA(m.Image.Entry), args...)
			if err == nil {
				t.isMain = true
			}
			return t, err
		}
	}
	return nil, fmt.Errorf("start: no executable module loaded")
}

// Threads returns all threads, including finished ones.
func (p *Process) Threads() []*Thread {
	out := make([]*Thread, len(p.threads))
	copy(out, p.threads)
	return out
}

// Thread returns the thread with the given ID.
func (p *Process) Thread(id int) (*Thread, bool) {
	for _, t := range p.threads {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// Alive reports whether the process can still make progress now or in the
// future (i.e. it has not exited or crashed).
func (p *Process) Alive() bool {
	return p.State == ProcRunning || p.State == ProcIdle
}

// Exit terminates the process with the given code (HALT or exit syscall).
func (p *Process) Exit(code uint64) {
	p.State = ProcExited
	p.ExitCode = code
	for _, t := range p.threads {
		t.State = ThreadDone
	}
}

// crashProcess records the fatal exception and stops all threads.
func (p *Process) crashProcess(t *Thread, exc Exception) {
	p.State = ProcCrashed
	p.Crash = &CrashInfo{TID: t.ID, Exc: exc, Clock: p.Clock}
	for _, th := range p.threads {
		th.State = ThreadDone
	}
}

// RunResult summarizes a Run invocation.
type RunResult struct {
	State ProcState
	Ticks uint64 // virtual ticks consumed, including time skips
}

// Run executes up to budget virtual ticks. It returns when the budget is
// exhausted, the process exits or crashes, or every thread is blocked with
// no pending timeout (ProcIdle) — at which point the embedding monitor can
// inject external events (network input, corruption) and call Run again.
func (p *Process) Run(budget uint64) RunResult {
	start := p.Clock
	deadline := p.Clock + budget
	for p.Clock < deadline {
		if p.State == ProcExited || p.State == ProcCrashed {
			break
		}
		t := p.pickRunnable()
		if t == nil {
			// Nothing runnable: try a virtual time skip to the
			// earliest timer.
			wake := p.earliestWake()
			if wake == 0 {
				p.State = ProcIdle
				break
			}
			if wake > deadline {
				// The timer is beyond our budget; consume the
				// budget as idle time.
				p.Clock = deadline
				break
			}
			if wake > p.Clock {
				p.Clock = wake
			}
			p.fireTimers()
			continue
		}
		p.State = ProcRunning
		p.runQuantum(t, deadline)
		p.fireTimers()
	}
	if p.State == ProcRunning && p.pickRunnable() == nil && p.earliestWake() == 0 {
		p.State = ProcIdle
	}
	return RunResult{State: p.State, Ticks: p.Clock - start}
}

// RunUntilIdle keeps running in large increments until the process goes
// idle, exits or crashes, or maxTicks elapse.
func (p *Process) RunUntilIdle(maxTicks uint64) RunResult {
	start := p.Clock
	for p.Clock-start < maxTicks {
		res := p.Run(minU64(1_000_000, maxTicks-(p.Clock-start)))
		if res.State != ProcRunning {
			return RunResult{State: res.State, Ticks: p.Clock - start}
		}
	}
	return RunResult{State: p.State, Ticks: p.Clock - start}
}

func (p *Process) pickRunnable() *Thread {
	n := len(p.threads)
	for i := 0; i < n; i++ {
		t := p.threads[(p.rrIndex+i)%n]
		if t.State == ThreadRunnable {
			p.rrIndex = (p.rrIndex + i + 1) % n
			return t
		}
	}
	return nil
}

func (p *Process) earliestWake() uint64 {
	var min uint64
	for _, t := range p.threads {
		if t.State == ThreadBlocked && t.WakeAt != 0 {
			if min == 0 || t.WakeAt < min {
				min = t.WakeAt
			}
		}
	}
	return min
}

func (p *Process) fireTimers() {
	for _, t := range p.threads {
		if t.State == ThreadBlocked && t.WakeAt != 0 && t.WakeAt <= p.Clock {
			t.Wake(true)
		}
	}
}

// runQuantum executes up to the scheduler quantum of instructions on t.
func (p *Process) runQuantum(t *Thread, deadline uint64) {
	for i := 0; i < p.quantum && p.Clock < deadline; i++ {
		if t.State != ThreadRunnable || !p.Alive() {
			return
		}
		yielded := p.step(t)
		if yielded {
			return
		}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
