package vm

import (
	"crashresist/internal/bin"
	"crashresist/internal/faultinject"
	"crashresist/internal/isa"
)

// filterBudget bounds the instructions a single filter-function evaluation
// may execute before it is abandoned (disposition: continue search).
const filterBudget = 100_000

// dispatchException routes an exception through the platform's exception
// model, crashing the process if nothing handles it.
func (p *Process) dispatchException(t *Thread, exc Exception) {
	p.Stats.Faults++
	if exc.Code == ExcAccessViolation && exc.Unmapped {
		p.Stats.FaultsUnmapped++
	}
	if p.Tracer != nil {
		p.Tracer.OnException(t, exc)
	}
	// §VII-C countermeasure: unmapped access violations are uncatchable.
	if p.Policy.MappedOnlyAV && exc.Code == ExcAccessViolation && exc.Unmapped {
		p.crashProcess(t, exc)
		return
	}
	// Injected dispatch failure: the exception machinery itself breaks
	// (keyed by the virtual clock), terminating the process as if no
	// handler search had run.
	if fp := p.FaultPlan; fp != nil && fp.Should(faultinject.SiteVMDispatch, p.Clock) {
		p.Stats.FaultsInjected++
		p.crashProcess(t, exc)
		return
	}
	switch p.Platform {
	case PlatformWindows:
		p.dispatchSEH(t, exc)
	case PlatformLinux:
		p.dispatchSignal(t, exc)
	default:
		p.crashProcess(t, exc)
	}
}

// dispatchSEH first offers the exception to vectored handlers (registered
// at run time, invisible to static scope tables), then walks the thread's
// frames innermost-first looking for a scope entry guarding the frame's
// current instruction whose filter accepts the exception, unwinding to that
// frame and resuming at the handler target.
func (p *Process) dispatchSEH(t *Thread, exc Exception) {
	for _, va := range p.veh {
		disp := p.runHandlerFunc(t, va, exc)
		if disp == DispositionContinueExecution {
			// The vectored handler resolved the fault; resume past
			// the faulting instruction (see the scope-handler
			// comment below on this deviation from resume-at).
			if skipped, ok := p.skipInstruction(exc.PC); ok {
				t.PC = skipped
				p.Stats.FaultsHandled++
				if p.Tracer != nil {
					p.Tracer.OnExceptionHandled(t, exc, va)
				}
				return
			}
		}
	}
	p.dispatchScopes(t, exc)
}

// dispatchScopes is the frame-based half of SEH dispatch.
func (p *Process) dispatchScopes(t *Thread, exc Exception) {
	for fi := len(t.frames) - 1; fi >= 0; fi-- {
		// The PC to match against scope ranges: the faulting PC for
		// the innermost frame; for outer frames, the instruction
		// containing the call (return address minus one byte).
		pcInFrame := exc.PC
		if fi < len(t.frames)-1 {
			ret := t.frames[fi+1].RetPC
			if ret == 0 || isMagicPC(ret) {
				continue
			}
			pcInFrame = ret - 1
		}
		mod, ok := p.FindModule(pcInFrame)
		if !ok {
			continue
		}
		for _, scope := range mod.ScopesAt(pcInFrame) {
			disp := p.evalFilter(t, mod, scope, exc)
			switch disp {
			case DispositionExecuteHandler:
				// Unwind: discard frames above fi, restore the
				// guarded function's entry SP, land on the
				// handler target.
				t.frames = t.frames[:fi+1]
				t.Regs[16] = t.frames[fi].SPAtEntry
				t.PC = mod.VA(scope.Target)
				t.Regs[0] = uint64(exc.Code)
				p.Stats.FaultsHandled++
				if p.Tracer != nil {
					p.Tracer.OnExceptionHandled(t, exc, t.PC)
				}
				return
			case DispositionContinueExecution:
				// Resume past the faulting instruction. (Real
				// SEH resumes *at* it, assuming the filter
				// fixed the cause; our filters cannot patch
				// machine state, so the VM skips instead —
				// this models the "swallowed exception" class
				// of §III-C.)
				if skipped, ok := p.skipInstruction(exc.PC); ok {
					t.PC = skipped
					p.Stats.FaultsHandled++
					if p.Tracer != nil {
						p.Tracer.OnExceptionHandled(t, exc, t.PC)
					}
					return
				}
			}
			// DispositionContinueSearch: try next scope/frame.
		}
	}
	p.crashProcess(t, exc)
}

// evalFilter returns the disposition of a scope's filter for the exception.
// Catch-all scopes accept without running code. Filter functions execute on
// the faulting thread in a bounded sub-interpreter; any fault or budget
// overrun inside the filter yields "continue search".
func (p *Process) evalFilter(t *Thread, mod *bin.Module, scope bin.ScopeEntry, exc Exception) uint64 {
	if scope.IsCatchAll() {
		return DispositionExecuteHandler
	}
	return p.runHandlerFunc(t, mod.VA(scope.Filter), exc)
}

// runHandlerFunc executes a filter or vectored-handler function at
// filterVA on the faulting thread in a bounded scratch context and returns
// its disposition (R0).
func (p *Process) runHandlerFunc(t *Thread, filterVA uint64, exc Exception) uint64 {
	// Snapshot thread state; the filter runs in a scratch context.
	saved := *t
	savedFrames := make([]Frame, len(t.frames))
	copy(savedFrames, t.frames)

	// Scratch stack below the current SP (stack grows down; the region
	// below SP inside the mapped stack is free).
	sp := t.Regs[16] - 512
	if err := p.AS.WriteUint(sp, 8, uint64(filterDoneMagic)); err != nil {
		return DispositionContinueSearch
	}
	t.Regs[16] = sp
	t.Regs[1] = uint64(exc.Code)
	t.Regs[2] = exc.Addr
	t.PC = filterVA
	t.frames = append(t.frames, Frame{FuncEntry: filterVA, SPAtEntry: sp, RetPC: filterDoneMagic})
	t.filterDepth++

	disp := uint64(DispositionContinueSearch)
	for steps := 0; steps < filterBudget; steps++ {
		if t.PC == filterDoneMagic {
			disp = t.Regs[0]
			break
		}
		if isMagicPC(t.PC) {
			break // filter tried to exit the thread; abandon
		}
		if excInner := p.execOne(t); excInner != nil {
			break // fault inside the filter: continue search
		}
		if t.State != ThreadRunnable {
			break // filter blocked (syscall); abandon
		}
	}

	// Restore the interrupted context.
	frames := t.frames[:0]
	frames = append(frames, savedFrames...)
	*t = saved
	t.frames = frames
	return disp
}

// dispatchSignal implements the Linux model: a registered handler for the
// exception's signal runs with (signo, addr) in R1/R2; returning from the
// handler resumes execution after the faulting instruction. Without a
// handler the process terminates.
func (p *Process) dispatchSignal(t *Thread, exc Exception) {
	handler, ok := p.SignalHandlers[exc.Signal()]
	if !ok || handler == 0 {
		p.crashProcess(t, exc)
		return
	}
	resumeAt, ok := p.skipInstruction(exc.PC)
	if !ok {
		p.crashProcess(t, exc)
		return
	}
	ctx := sigCtx{regs: t.Regs, pc: resumeAt, resume: resumeAt, frames: len(t.frames)}
	t.savedSigCtx = append(t.savedSigCtx, ctx)
	t.sigDepth++

	sp := t.Regs[16] - 512
	if err := p.AS.WriteUint(sp, 8, uint64(sigReturnMagic)); err != nil {
		p.crashProcess(t, exc)
		return
	}
	t.Regs[16] = sp
	t.Regs[1] = uint64(exc.Signal())
	t.Regs[2] = exc.Addr
	t.PC = handler
	t.frames = append(t.frames, Frame{FuncEntry: handler, SPAtEntry: sp, RetPC: sigReturnMagic})
	p.Stats.FaultsHandled++
	if p.Tracer != nil {
		p.Tracer.OnExceptionHandled(t, exc, handler)
	}
}

// sigReturn restores the context saved by dispatchSignal.
func (p *Process) sigReturn(t *Thread) {
	if t.sigDepth == 0 || len(t.savedSigCtx) == 0 {
		p.crashProcess(t, Exception{Code: ExcIllegalInstruction, PC: t.PC})
		return
	}
	ctx := t.savedSigCtx[len(t.savedSigCtx)-1]
	t.savedSigCtx = t.savedSigCtx[:len(t.savedSigCtx)-1]
	t.sigDepth--
	t.Regs = ctx.regs
	t.PC = ctx.pc
	if ctx.frames <= len(t.frames) {
		t.frames = t.frames[:ctx.frames]
	}
}

// skipInstruction returns the address of the instruction after pc.
func (p *Process) skipInstruction(pc uint64) (uint64, bool) {
	var buf [10]byte
	code, err := p.AS.FetchExec(pc, len(buf), buf[:0])
	if err != nil {
		return 0, false
	}
	_, size, err := isa.Decode(code)
	if err != nil {
		return 0, false
	}
	return pc + uint64(size), true
}

func isMagicPC(pc uint64) bool {
	switch pc {
	case threadExitMagic, filterDoneMagic, sigReturnMagic:
		return true
	}
	return false
}
