// Package winapi implements the Windows-model platform API layer: a
// registry of API function descriptors with per-category runtime behaviour,
// and a deterministic corpus generator reproducing the population the paper
// fuzzed (§V-B: 20,672 documented functions, 11,521 with at least one
// pointer argument, 400 of which handle invalid pointers gracefully).
//
// The behavioural split models the paper's observation about the Windows
// API: some functions hand user pointers straight to the kernel, which
// validates them and reports an error status (crash-resistant); most
// preprocess arguments in their user-space stub, where a bad pointer simply
// faults in user mode (not crash-resistant).
//
// The category is generator metadata. The discovery pipeline never reads
// it — the fuzzer classifies functions purely by calling them and observing
// the outcome, exactly like the paper's black-box API fuzzer.
package winapi

import (
	"fmt"
	"math/rand"

	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// Category describes how an API treats pointer arguments at runtime.
type Category uint8

// Categories.
const (
	// CatNoPointer: no pointer arguments at all.
	CatNoPointer Category = iota + 1
	// CatKernelValidated: pointers are validated kernel-side; invalid
	// ones yield ErrInvalidPointer without any user-mode fault.
	CatKernelValidated
	// CatQueryStruct: like CatKernelValidated, but the function's purpose
	// is filling a caller-provided result structure (the
	// GetPwrCapabilities shape) — callers overwhelmingly pass stack
	// storage, which matters for the controllability analysis.
	CatQueryStruct
	// CatUserDeref: the user-space stub dereferences a pointer argument
	// before reaching the kernel; invalid pointers fault in user mode.
	CatUserDeref
)

// String renders the category.
func (c Category) String() string {
	switch c {
	case CatNoPointer:
		return "no-pointer"
	case CatKernelValidated:
		return "kernel-validated"
	case CatQueryStruct:
		return "query-struct"
	case CatUserDeref:
		return "user-deref"
	default:
		return "category?"
	}
}

// Status values returned in R0 by API calls.
const (
	StatusOK            uint64 = 0
	ErrInvalidPointer   uint64 = 998 // ERROR_NOACCESS
	ErrInvalidParameter uint64 = 87
	structProbeSize            = 16 // bytes read/written through pointer args
)

// Descriptor describes one API function.
type Descriptor struct {
	ID   uint32
	Name string
	// NArgs is the argument count (max 5, passed in R1..R5).
	NArgs int
	// PtrArgs holds the zero-based indices of pointer arguments.
	PtrArgs []int
	// Cat is generator metadata; analyses must not consult it (the
	// fuzzer discovers behaviour black-box).
	Cat Category
	// Writes reports whether the pointer args are written (out-params)
	// rather than read.
	Writes bool
}

// HasPointerArg reports whether the function takes at least one pointer.
func (d *Descriptor) HasPointerArg() bool { return len(d.PtrArgs) > 0 }

// NativeFunc is a special-cased API implementation (e.g. Sleep,
// AddVectoredExceptionHandler) that needs behaviour beyond the category
// model. It may block the thread or return a user-mode exception.
type NativeFunc func(p *vm.Process, t *vm.Thread) *vm.Exception

// Registry maps API ids/names to descriptors and implements vm.APIHandler.
type Registry struct {
	byID    map[uint32]*Descriptor
	byName  map[string]*Descriptor
	natives map[uint32]NativeFunc
	nextID  uint32
}

var _ vm.APIHandler = (*Registry)(nil)

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:    make(map[uint32]*Descriptor),
		byName:  make(map[string]*Descriptor),
		natives: make(map[uint32]NativeFunc),
		nextID:  1,
	}
}

// RegisterNative adds an API backed by a custom implementation. The
// descriptor's category is ignored at call time.
func (r *Registry) RegisterNative(d Descriptor, fn NativeFunc) *Descriptor {
	nd := r.Register(d)
	r.natives[nd.ID] = fn
	return nd
}

// Register adds a descriptor, assigning its ID.
func (r *Registry) Register(d Descriptor) *Descriptor {
	d.ID = r.nextID
	r.nextID++
	nd := new(Descriptor)
	*nd = d
	r.byID[nd.ID] = nd
	r.byName[nd.Name] = nd
	return nd
}

// Lookup returns a descriptor by name.
func (r *Registry) Lookup(name string) (*Descriptor, bool) {
	d, ok := r.byName[name]
	return d, ok
}

// ByID returns a descriptor by id.
func (r *Registry) ByID(id uint32) (*Descriptor, bool) {
	d, ok := r.byID[id]
	return d, ok
}

// All returns every descriptor in id order.
func (r *Registry) All() []*Descriptor {
	out := make([]*Descriptor, 0, len(r.byID))
	for id := uint32(1); id < r.nextID; id++ {
		if d, ok := r.byID[id]; ok {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the number of registered functions.
func (r *Registry) Len() int { return len(r.byID) }

// Resolve implements vm.APIHandler.
func (r *Registry) Resolve(symbol string) (uint32, error) {
	d, ok := r.byName[symbol]
	if !ok {
		return 0, fmt.Errorf("winapi: unknown API %q", symbol)
	}
	return d.ID, nil
}

// Call implements vm.APIHandler: runs the API's category behaviour.
func (r *Registry) Call(p *vm.Process, t *vm.Thread, id uint32) *vm.Exception {
	d, ok := r.byID[id]
	if !ok {
		t.SetReg(0, ErrInvalidParameter)
		return nil
	}
	if fn, isNative := r.natives[id]; isNative {
		return fn(p, t)
	}
	switch d.Cat {
	case CatNoPointer:
		// Pure computation; deterministic token result.
		t.SetReg(0, StatusOK)
		return nil

	case CatKernelValidated, CatQueryStruct:
		for _, ai := range d.PtrArgs {
			ptr := t.Regs[1+ai]
			access := mem.AccessRead
			if d.Writes {
				access = mem.AccessWrite
			}
			if err := p.AS.Check(ptr, structProbeSize, access); err != nil {
				t.SetReg(0, ErrInvalidPointer)
				return nil
			}
		}
		// Touch the memory kernel-side (cannot fault: just checked).
		for _, ai := range d.PtrArgs {
			ptr := t.Regs[1+ai]
			if d.Writes {
				// Fill the result struct with a recognizable
				// pattern derived from the API id.
				for i := 0; i < structProbeSize; i += 8 {
					_ = p.AS.WriteUint(ptr+uint64(i), 8, uint64(d.ID)<<8|uint64(i))
				}
				if p.Flow != nil {
					p.Flow.ClearMem(ptr, structProbeSize)
				}
			} else {
				_, _ = p.AS.ReadUint(ptr, 8)
			}
		}
		t.SetReg(0, StatusOK)
		return nil

	case CatUserDeref:
		// The user-space stub touches the first pointer argument
		// before any kernel validation; a bad pointer faults in user
		// mode, subject to the caller's exception handlers.
		if len(d.PtrArgs) == 0 {
			t.SetReg(0, StatusOK)
			return nil
		}
		ptr := t.Regs[1+d.PtrArgs[0]]
		access := mem.AccessRead
		if d.Writes {
			access = mem.AccessWrite
		}
		if err := p.AS.Check(ptr, 8, access); err != nil {
			f, _ := err.(*mem.Fault)
			exc := &vm.Exception{
				Code:   vm.ExcAccessViolation,
				Addr:   ptr,
				Access: access,
			}
			if f != nil {
				exc.Addr = f.Addr
				exc.Unmapped = f.Unmapped
			}
			return exc
		}
		if d.Writes {
			_ = p.AS.WriteUint(ptr, 8, uint64(d.ID))
			if p.Flow != nil {
				p.Flow.ClearMem(ptr, 8)
			}
		} else {
			_, _ = p.AS.ReadUint(ptr, 8)
		}
		t.SetReg(0, StatusOK)
		return nil

	default:
		t.SetReg(0, ErrInvalidParameter)
		return nil
	}
}

// CorpusParams sizes the generated API population; the defaults reproduce
// the paper's §V-B counts.
type CorpusParams struct {
	Seed int64
	// Total API functions ("extracted from the MSDN library").
	Total int
	// WithPointer is how many take at least one pointer argument.
	WithPointer int
	// CrashResistant is how many of the pointer-taking functions survive
	// invalid pointers gracefully (kernel-validated + query-struct).
	CrashResistant int
	// QueryStructShare of the crash-resistant population is of the
	// query-struct shape (numerator over denominator 100).
	QueryStructShare int
}

// DefaultCorpusParams returns the paper's §V-B population sizes.
func DefaultCorpusParams() CorpusParams {
	return CorpusParams{
		Seed:             1701,
		Total:            20672,
		WithPointer:      11521,
		CrashResistant:   400,
		QueryStructShare: 60,
	}
}

// GenerateCorpus builds a registry with the parameterized population. The
// assignment of names to categories is deterministic in the seed.
func GenerateCorpus(params CorpusParams) (*Registry, error) {
	if params.WithPointer > params.Total || params.CrashResistant > params.WithPointer {
		return nil, fmt.Errorf("winapi: inconsistent corpus params %+v", params)
	}
	rng := rand.New(rand.NewSource(params.Seed))
	r := NewRegistry()

	// Category assignment over the pointer-taking population: the first
	// CrashResistant slots (after shuffling) are graceful, the rest
	// fault in user mode.
	cats := make([]Category, params.WithPointer)
	for i := range cats {
		switch {
		case i < params.CrashResistant*params.QueryStructShare/100:
			cats[i] = CatQueryStruct
		case i < params.CrashResistant:
			cats[i] = CatKernelValidated
		default:
			cats[i] = CatUserDeref
		}
	}
	rng.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })

	ptrIdx := 0
	for i := 0; i < params.Total; i++ {
		d := Descriptor{
			Name:  apiName(rng, i),
			NArgs: 1 + rng.Intn(5),
		}
		if i < params.WithPointer {
			d.Cat = cats[ptrIdx]
			ptrIdx++
			nPtr := 1 + rng.Intn(2)
			if nPtr > d.NArgs {
				nPtr = d.NArgs
			}
			seen := make(map[int]bool, nPtr)
			for len(d.PtrArgs) < nPtr {
				ai := rng.Intn(d.NArgs)
				if !seen[ai] {
					seen[ai] = true
					d.PtrArgs = append(d.PtrArgs, ai)
				}
			}
			d.Writes = d.Cat == CatQueryStruct || rng.Intn(2) == 0
		} else {
			d.Cat = CatNoPointer
		}
		r.Register(d)
	}
	return r, nil
}

// apiName produces a plausible deterministic API name.
func apiName(rng *rand.Rand, i int) string {
	verbs := []string{"Get", "Set", "Query", "Create", "Open", "Close", "Enum", "Read", "Write", "Register"}
	nouns := []string{"Pwr", "File", "Window", "Registry", "Thread", "Process", "Token", "Device", "Service", "Timer"}
	tails := []string{"Info", "State", "Capabilities", "Attributes", "Ex", "Data", "Context", "Config", "Status", "Entry"}
	return fmt.Sprintf("%s%s%s%05d",
		verbs[rng.Intn(len(verbs))], nouns[rng.Intn(len(nouns))], tails[rng.Intn(len(tails))], i)
}
