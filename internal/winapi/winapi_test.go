package winapi

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// callAPI builds a one-shot harness process calling the named API with the
// given first argument, and returns the process after it runs.
func callAPI(t *testing.T, reg *Registry, api string, arg1 uint64) *vm.Process {
	t.Helper()
	b := asm.NewBuilder("harness.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		MovRI(isa.R1, arg1).
		MovRI(isa.R2, arg1).
		MovRI(isa.R3, arg1).
		MovRI(isa.R4, arg1).
		MovRI(isa.R5, arg1).
		CallImport("", api).
		Halt().
		EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 21})
	p.API = reg
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	return p
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register(Descriptor{Name: "PureFn", NArgs: 2, Cat: CatNoPointer})
	r.Register(Descriptor{Name: "KernelRead", NArgs: 2, PtrArgs: []int{0}, Cat: CatKernelValidated})
	r.Register(Descriptor{Name: "QueryFill", NArgs: 1, PtrArgs: []int{0}, Cat: CatQueryStruct, Writes: true})
	r.Register(Descriptor{Name: "StubDeref", NArgs: 2, PtrArgs: []int{0}, Cat: CatUserDeref})
	return r
}

func TestResolve(t *testing.T) {
	r := testRegistry()
	id, err := r.Resolve("KernelRead")
	if err != nil || id != 2 {
		t.Errorf("Resolve = %d %v", id, err)
	}
	if _, err := r.Resolve("Missing"); err == nil {
		t.Error("Resolve of unknown API should fail")
	}
}

func TestNoPointerAPI(t *testing.T) {
	p := callAPI(t, testRegistry(), "PureFn", 0xdead0000)
	if p.State != vm.ProcExited || p.ExitCode != StatusOK {
		t.Errorf("state=%v exit=%d", p.State, p.ExitCode)
	}
}

func TestKernelValidatedGraceful(t *testing.T) {
	// Invalid pointer: error return, no crash.
	p := callAPI(t, testRegistry(), "KernelRead", 0xdead0000)
	if p.State != vm.ProcExited {
		t.Fatalf("state = %v crash=%v, want graceful exit", p.State, p.Crash)
	}
	if p.ExitCode != ErrInvalidPointer {
		t.Errorf("ret = %d, want ErrInvalidPointer", p.ExitCode)
	}
}

func TestKernelValidatedSuccess(t *testing.T) {
	// Build a harness pointing at mapped data.
	r := testRegistry()
	b := asm.NewBuilder("harness.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		LeaData(isa.R1, "buf").
		CallImport("", "KernelRead").
		Halt().
		EndFunc()
	b.BSS("buf", 32)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 21})
	p.API = r
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.ExitCode != StatusOK {
		t.Errorf("ret = %d, want OK", p.ExitCode)
	}
}

func TestQueryStructFillsResult(t *testing.T) {
	r := testRegistry()
	b := asm.NewBuilder("harness.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		LeaData(isa.R1, "buf").
		CallImport("", "QueryFill").
		LeaData(isa.R2, "buf").
		Load(8, isa.R0, isa.R2, 0).
		Halt().
		EndFunc()
	b.BSS("buf", 32)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 21})
	p.API = r
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	d, _ := r.Lookup("QueryFill")
	if p.ExitCode != uint64(d.ID)<<8 {
		t.Errorf("struct content = %#x, want id pattern %#x", p.ExitCode, uint64(d.ID)<<8)
	}
}

func TestUserDerefFaultsOnBadPointer(t *testing.T) {
	// Without a handler, the user-mode fault kills the process: the
	// defining difference from kernel-validated APIs.
	p := callAPI(t, testRegistry(), "StubDeref", 0xdead0000)
	if p.State != vm.ProcCrashed {
		t.Fatalf("state = %v, want crash", p.State)
	}
	if p.Crash.Exc.Code != vm.ExcAccessViolation {
		t.Errorf("crash code = %#x", p.Crash.Exc.Code)
	}
}

func TestUserDerefFaultIsCatchable(t *testing.T) {
	// A guarded call site survives the stub fault — the IE PoC shape,
	// where EnterCriticalSection's deref is guarded by the caller.
	r := testRegistry()
	b := asm.NewBuilder("harness.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		MovRI(isa.R1, 0xdead0000).
		Label("try").
		CallImport("", "StubDeref").
		Label("try_end").
		MovRI(isa.R0, 1).
		Halt().
		Label("handler").
		MovRI(isa.R0, 2).
		Halt().
		EndFunc()
	b.Guard("main", "try", "try_end", asm.CatchAll, "handler")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 21})
	p.API = r
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.State != vm.ProcExited || p.ExitCode != 2 {
		t.Errorf("state=%v exit=%d crash=%v, want handled (2)", p.State, p.ExitCode, p.Crash)
	}
}

func TestUserDerefSuccessPath(t *testing.T) {
	r := testRegistry()
	b := asm.NewBuilder("harness.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		LeaData(isa.R1, "buf").
		CallImport("", "StubDeref").
		Halt().
		EndFunc()
	b.BSS("buf", 16)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 21})
	p.API = r
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.State != vm.ProcExited || p.ExitCode != StatusOK {
		t.Errorf("state=%v exit=%d", p.State, p.ExitCode)
	}
}

func TestGenerateCorpusCounts(t *testing.T) {
	params := CorpusParams{
		Seed:             7,
		Total:            500,
		WithPointer:      300,
		CrashResistant:   40,
		QueryStructShare: 50,
	}
	r, err := GenerateCorpus(params)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 500 {
		t.Fatalf("len = %d", r.Len())
	}
	var withPtr, graceful, query, kernel, deref int
	for _, d := range r.All() {
		if d.HasPointerArg() {
			withPtr++
		}
		switch d.Cat {
		case CatQueryStruct:
			query++
			graceful++
		case CatKernelValidated:
			kernel++
			graceful++
		case CatUserDeref:
			deref++
		}
	}
	if withPtr != 300 {
		t.Errorf("withPtr = %d", withPtr)
	}
	if graceful != 40 {
		t.Errorf("graceful = %d", graceful)
	}
	if query != 20 || kernel != 20 {
		t.Errorf("query/kernel = %d/%d, want 20/20", query, kernel)
	}
	if deref != 260 {
		t.Errorf("deref = %d", deref)
	}
	// Pointer-arg indices must be within NArgs.
	for _, d := range r.All() {
		for _, ai := range d.PtrArgs {
			if ai >= d.NArgs {
				t.Fatalf("%s: ptr arg %d >= nargs %d", d.Name, ai, d.NArgs)
			}
		}
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	p := CorpusParams{Seed: 9, Total: 100, WithPointer: 50, CrashResistant: 5, QueryStructShare: 60}
	r1, err := GenerateCorpus(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GenerateCorpus(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1.All(), r2.All()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Cat != b[i].Cat {
			t.Fatalf("corpus not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateCorpusRejectsBadParams(t *testing.T) {
	if _, err := GenerateCorpus(CorpusParams{Total: 10, WithPointer: 20}); err == nil {
		t.Error("WithPointer > Total should fail")
	}
	if _, err := GenerateCorpus(CorpusParams{Total: 10, WithPointer: 5, CrashResistant: 6}); err == nil {
		t.Error("CrashResistant > WithPointer should fail")
	}
}

func TestDefaultCorpusParamsMatchPaper(t *testing.T) {
	p := DefaultCorpusParams()
	if p.Total != 20672 || p.WithPointer != 11521 || p.CrashResistant != 400 {
		t.Errorf("params = %+v", p)
	}
}

func TestRegistryAllOrdered(t *testing.T) {
	r := testRegistry()
	all := r.All()
	if len(all) != 4 {
		t.Fatalf("All = %d", len(all))
	}
	for i, d := range all {
		if d.ID != uint32(i+1) {
			t.Errorf("descriptor %d has id %d", i, d.ID)
		}
	}
	if d, ok := r.ByID(3); !ok || d.Name != "QueryFill" {
		t.Errorf("ByID(3) = %v %v", d, ok)
	}
	if _, ok := r.ByID(99); ok {
		t.Error("ByID(99) should miss")
	}
}

func TestCategoryString(t *testing.T) {
	for c := CatNoPointer; c <= CatUserDeref; c++ {
		if c.String() == "category?" {
			t.Errorf("category %d unnamed", c)
		}
	}
}

func TestUserDerefUnmappedFlag(t *testing.T) {
	// The exception carries the unmapped flag so the mapped-only policy
	// can distinguish probe targets.
	proc := callAPI(t, testRegistry(), "StubDeref", 0xdead0000)
	if !proc.Crash.Exc.Unmapped {
		t.Error("unmapped flag not propagated")
	}
	// Mapped-but-protected: map a page read-only and ask for write.
	r2 := NewRegistry()
	r2.Register(Descriptor{Name: "StubWrite", NArgs: 1, PtrArgs: []int{0}, Cat: CatUserDeref, Writes: true})
	b := asm.NewBuilder("harness.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		LeaData(isa.R1, "ro").
		CallImport("", "StubWrite").
		Halt().
		EndFunc()
	b.BSS("ro", 16)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2 := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 3})
	p2.API = r2
	mod, err := p2.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	roVA := mod.VA(img.BSSStart())
	if err := p2.AS.Protect(roVA&^uint64(mem.PageSize-1), mem.PageSize, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	p2.RunUntilIdle(1_000_000)
	if p2.State != vm.ProcCrashed {
		t.Fatalf("state = %v", p2.State)
	}
	if p2.Crash.Exc.Unmapped {
		t.Error("protected-page fault misreported as unmapped")
	}
}
