// Package faultinject provides deterministic, seed-driven fault injection
// for the discovery pipelines — the chaos-engineering half of the paper's
// own thesis. The paper's primitives survive faults in the *analyzed*
// process; this package injects faults into the *analyzing* system (the
// emulator, the kernel model, the symbolic executor, the worker pool) so
// the resilience machinery in internal/discover can be exercised and
// regression-tested.
//
// Every injection decision is a pure function of (plan seed, site, key,
// attempt): no internal state, no clocks, no randomness at decision time.
// Two consequences follow. First, a run with a given plan is reproducible
// bit-for-bit — the same faults fire at the same keys no matter how many
// pool workers raced over the jobs. Second, retry semantics need no shared
// counters: a transient fault at key K simply keeps failing while
// attempt < tries(K), so the retry loop passes the attempt number in and
// shared-state races cannot arise.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Site names one injection point in the system. Sites are stable wire
// strings; plans enable any subset.
type Site string

// Injection sites.
const (
	// SiteVMLoad injects an unmapped access violation at a memory load,
	// keyed by the process's virtual clock.
	SiteVMLoad Site = "vm.load"
	// SiteVMStore injects an unmapped access violation at a memory store.
	SiteVMStore Site = "vm.store"
	// SiteVMDispatch makes exception dispatch itself fail: the process
	// crashes as if no handler machinery existed.
	SiteVMDispatch Site = "vm.dispatch"
	// SiteKernelSyscall makes a syscall return an error instead of
	// running: -EAGAIN for transient plans, -EIO for permanent ones.
	SiteKernelSyscall Site = "kernel.syscall"
	// SiteSymFilter fails a symbolic filter analysis with a host-level
	// error, exercising shard retry and degradation.
	SiteSymFilter Site = "sym.filter"
	// SitePoolJob fails a discovery-pool job before it runs.
	SitePoolJob Site = "pool.job"
	// SiteCASRead degrades a persistent-cache read to a miss, forcing
	// recompute. The cache absorbs the fault itself — it never becomes a
	// pipeline error or a degraded record, only a changed hit counter.
	SiteCASRead Site = "cas.read"
	// SiteCASWrite drops a persistent-cache write, so the entry stays
	// absent and a later run recomputes it.
	SiteCASWrite Site = "cas.write"
)

// Sites lists every known site in stable order.
func Sites() []Site {
	return []Site{SiteVMLoad, SiteVMStore, SiteVMDispatch, SiteKernelSyscall, SiteSymFilter, SitePoolJob, SiteCASRead, SiteCASWrite}
}

// Mode distinguishes faults that clear on retry from ones that never do.
type Mode uint8

// Modes.
const (
	// ModeTransient faults fail the first tries(key) attempts and then
	// succeed — the class bounded retry is designed to absorb.
	ModeTransient Mode = iota + 1
	// ModePermanent faults fail every attempt; only degradation helps.
	ModePermanent
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeTransient:
		return "transient"
	case ModePermanent:
		return "permanent"
	default:
		return "mode?"
	}
}

// SiteConfig parameterizes injection at one site.
type SiteConfig struct {
	// Rate is the per-key injection probability in [0, 1].
	Rate float64
	// Mode selects transient or permanent faults.
	Mode Mode
	// Tries bounds how many attempts a transient fault fails: each
	// selected key draws tries uniformly from [1, Tries] (derived from
	// the same hash, so it is deterministic per key). Zero means 1.
	// Ignored for permanent faults.
	Tries int
}

// Plan is an immutable-after-build fault plan. Configure with Enable, then
// share freely: decision methods are pure hashes plus per-site atomic
// counters, safe for concurrent use. A nil *Plan is a valid no-op receiver
// for every decision method.
type Plan struct {
	seed  int64
	sites map[Site]SiteConfig
	// injected counts fired injections per site, indexed as Sites().
	injected [8]atomic.Uint64
}

// New returns an empty plan (no sites enabled) for the seed.
func New(seed int64) *Plan {
	return &Plan{seed: seed, sites: make(map[Site]SiteConfig)}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Enable turns on injection at a site. Not safe concurrently with decision
// methods; configure before sharing.
func (p *Plan) Enable(site Site, cfg SiteConfig) *Plan {
	if cfg.Mode == 0 {
		cfg.Mode = ModeTransient
	}
	if cfg.Tries <= 0 {
		cfg.Tries = 1
	}
	p.sites[site] = cfg
	return p
}

// Default is the plan behind the CLIs' -chaos-seed flag: moderate rates at
// every site, mixing transient faults (absorbed by retry) with permanent
// ones (surfaced as Degraded records).
func Default(seed int64) *Plan {
	p := New(seed)
	p.Enable(SiteVMLoad, SiteConfig{Rate: 1e-7, Mode: ModeTransient, Tries: 2})
	p.Enable(SiteVMStore, SiteConfig{Rate: 1e-7, Mode: ModeTransient, Tries: 2})
	p.Enable(SiteVMDispatch, SiteConfig{Rate: 1e-3, Mode: ModePermanent})
	p.Enable(SiteKernelSyscall, SiteConfig{Rate: 5e-4, Mode: ModeTransient, Tries: 1})
	p.Enable(SiteSymFilter, SiteConfig{Rate: 5e-3, Mode: ModeTransient, Tries: 4})
	p.Enable(SitePoolJob, SiteConfig{Rate: 5e-2, Mode: ModeTransient, Tries: 4})
	p.Enable(SiteCASRead, SiteConfig{Rate: 5e-2, Mode: ModeTransient})
	p.Enable(SiteCASWrite, SiteConfig{Rate: 5e-2, Mode: ModeTransient})
	return p
}

// siteIndex maps a site to its stats slot; -1 for unknown sites.
func siteIndex(site Site) int {
	for i, s := range Sites() {
		if s == site {
			return i
		}
	}
	return -1
}

// decide is the single source of truth: whether the (site, key) pair is
// selected for injection, and with what per-key try budget.
func (p *Plan) decide(site Site, key uint64) (cfg SiteConfig, tries int, selected bool) {
	if p == nil {
		return SiteConfig{}, 0, false
	}
	cfg, ok := p.sites[site]
	if !ok || cfg.Rate <= 0 {
		return SiteConfig{}, 0, false
	}
	h := mix(uint64(p.seed), siteHash(site), key)
	// Compare the top 53 bits against the rate threshold; float64 holds
	// 53-bit integers exactly, so the comparison is deterministic.
	if float64(h>>11) >= cfg.Rate*float64(1<<53) {
		return SiteConfig{}, 0, false
	}
	tries = 1
	if cfg.Mode == ModeTransient && cfg.Tries > 1 {
		// Derive the per-key try budget from an independent bit span of
		// the same hash.
		tries = 1 + int((h>>7)%uint64(cfg.Tries))
	}
	return cfg, tries, true
}

// Should reports whether an injection fires at (site, key) on the first
// attempt, counting it when it does. This is the zero-attempt entry point
// for layers with no retry loop (the emulator, the kernel model).
func (p *Plan) Should(site Site, key uint64) bool {
	_, _, sel := p.decide(site, key)
	if sel {
		p.count(site)
	}
	return sel
}

// FaultAt returns the fault firing at (site, key) on the first attempt, or
// nil. Unlike Should it hands the caller the mode, so error-mapping layers
// (the kernel) can pick transient versus permanent semantics.
func (p *Plan) FaultAt(site Site, key uint64) *Fault {
	cfg, _, sel := p.decide(site, key)
	if !sel {
		return nil
	}
	p.count(site)
	return &Fault{Site: site, Key: key, Mode: cfg.Mode}
}

// ErrAttempt returns the injected error for the given attempt, or nil when
// no fault fires (not selected, or a transient fault's try budget is
// exhausted). Retry loops call it with attempt 0, 1, 2, ...; transient
// faults clear once attempt reaches the key's derived try budget.
func (p *Plan) ErrAttempt(site Site, key uint64, attempt int) error {
	cfg, tries, sel := p.decide(site, key)
	if !sel {
		return nil
	}
	if cfg.Mode == ModeTransient && attempt >= tries {
		return nil
	}
	p.count(site)
	return &Fault{Site: site, Key: key, Attempt: attempt, Mode: cfg.Mode}
}

func (p *Plan) count(site Site) {
	if i := siteIndex(site); i >= 0 {
		p.injected[i].Add(1)
	}
}

// Stats snapshots the per-site injection counts.
func (p *Plan) Stats() map[Site]uint64 {
	out := make(map[Site]uint64)
	if p == nil {
		return out
	}
	for i, s := range Sites() {
		if n := p.injected[i].Load(); n > 0 {
			out[s] = n
		}
	}
	return out
}

// ErrInjected is the sentinel every injected *Fault matches via errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault is one injected failure.
type Fault struct {
	Site    Site
	Key     uint64
	Attempt int
	Mode    Mode
}

// Error implements error. The message is a pure function of the fault's
// fields, so degraded-shard records stay deterministic.
func (f *Fault) Error() string {
	return fmt.Sprintf("injected %s fault at %s key %#x attempt %d", f.Mode, f.Site, f.Key, f.Attempt)
}

// Transient reports whether retrying can clear the fault.
func (f *Fault) Transient() bool { return f.Mode == ModeTransient }

// Is matches ErrInjected.
func (f *Fault) Is(target error) bool { return target == ErrInjected }

// IsTransient reports whether err (anywhere in its chain) declares itself
// retryable via a `Transient() bool` method.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Key builds a run-unique 64-bit key from string parts (FNV-1a). Pipelines
// key pool-level injections by (target, stage, job) so concurrent analyses
// sharing one plan draw independent faults.
func Key(parts ...string) uint64 {
	h := fnv.New64a()
	for _, s := range parts {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// siteHash folds a site name into the decision hash.
func siteHash(site Site) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return h.Sum64()
}

// mix is splitmix64 over the xor-folded inputs — cheap, stateless, and
// well-distributed across adjacent keys (virtual-clock ticks, dispatch
// indices).
func mix(seed, site, key uint64) uint64 {
	z := seed ^ rotl(site, 23) ^ rotl(key, 47)
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }
