package faultinject

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilPlanIsNoOp(t *testing.T) {
	var p *Plan
	if p.Should(SiteVMLoad, 1) {
		t.Error("nil plan should never inject")
	}
	if p.FaultAt(SiteKernelSyscall, 1) != nil {
		t.Error("nil plan FaultAt should be nil")
	}
	if p.ErrAttempt(SitePoolJob, 1, 0) != nil {
		t.Error("nil plan ErrAttempt should be nil")
	}
	if len(p.Stats()) != 0 {
		t.Error("nil plan stats should be empty")
	}
	if p.Seed() != 0 {
		t.Error("nil plan seed should be 0")
	}
}

func TestDisabledSiteNeverFires(t *testing.T) {
	p := New(1).Enable(SitePoolJob, SiteConfig{Rate: 1, Mode: ModePermanent})
	for key := uint64(0); key < 1000; key++ {
		if p.Should(SiteVMLoad, key) {
			t.Fatalf("disabled site fired at key %d", key)
		}
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	p := New(7).Enable(SitePoolJob, SiteConfig{Rate: 1, Mode: ModePermanent})
	for key := uint64(0); key < 100; key++ {
		if !p.Should(SitePoolJob, key) {
			t.Fatalf("rate-1 site did not fire at key %d", key)
		}
	}
	if got := p.Stats()[SitePoolJob]; got != 100 {
		t.Errorf("injected count = %d, want 100", got)
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	build := func() *Plan {
		return New(42).Enable(SitePoolJob, SiteConfig{Rate: 0.3, Mode: ModeTransient, Tries: 4})
	}
	a, b := build(), build()
	for key := uint64(0); key < 5000; key++ {
		for attempt := 0; attempt < 6; attempt++ {
			ea := a.ErrAttempt(SitePoolJob, key, attempt)
			eb := b.ErrAttempt(SitePoolJob, key, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("key %d attempt %d: plans disagree", key, attempt)
			}
			if ea != nil && ea.Error() != eb.Error() {
				t.Fatalf("key %d attempt %d: messages differ", key, attempt)
			}
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a := New(1).Enable(SitePoolJob, SiteConfig{Rate: 0.5, Mode: ModePermanent})
	b := New(2).Enable(SitePoolJob, SiteConfig{Rate: 0.5, Mode: ModePermanent})
	same := 0
	const n = 2000
	for key := uint64(0); key < n; key++ {
		if a.Should(SitePoolJob, key) == b.Should(SitePoolJob, key) {
			same++
		}
	}
	// Independent 50% decisions agree about half the time; near-total
	// agreement means the seed is not feeding the hash.
	if same > n*3/4 {
		t.Errorf("seeds 1 and 2 agree on %d/%d keys; decisions look seed-independent", same, n)
	}
}

func TestRateIsApproximatelyHonored(t *testing.T) {
	p := New(99).Enable(SiteVMLoad, SiteConfig{Rate: 0.1, Mode: ModePermanent})
	fired := 0
	const n = 20000
	for key := uint64(0); key < n; key++ {
		if p.Should(SiteVMLoad, key) {
			fired++
		}
	}
	if fired < n/20 || fired > n/5 {
		t.Errorf("rate 0.1 fired %d/%d times", fired, n)
	}
}

func TestTransientFaultsClearAfterTries(t *testing.T) {
	p := New(5).Enable(SitePoolJob, SiteConfig{Rate: 1, Mode: ModeTransient, Tries: 4})
	sawMulti := false
	for key := uint64(0); key < 200; key++ {
		// Find the key's try budget: first attempt with no error.
		cleared := -1
		for attempt := 0; attempt < 10; attempt++ {
			if p.ErrAttempt(SitePoolJob, key, attempt) == nil {
				cleared = attempt
				break
			}
		}
		if cleared < 1 || cleared > 4 {
			t.Fatalf("key %d cleared at attempt %d, want within [1,4]", key, cleared)
		}
		if cleared > 1 {
			sawMulti = true
		}
		// Once cleared, it stays cleared.
		if p.ErrAttempt(SitePoolJob, key, cleared+1) != nil {
			t.Fatalf("key %d failed again after clearing", key)
		}
	}
	if !sawMulti {
		t.Error("no key drew a multi-attempt try budget; Tries derivation looks broken")
	}
}

func TestPermanentFaultsNeverClear(t *testing.T) {
	p := New(5).Enable(SiteSymFilter, SiteConfig{Rate: 1, Mode: ModePermanent})
	for attempt := 0; attempt < 20; attempt++ {
		if p.ErrAttempt(SiteSymFilter, 77, attempt) == nil {
			t.Fatalf("permanent fault cleared at attempt %d", attempt)
		}
	}
}

func TestFaultErrorIdentity(t *testing.T) {
	p := New(3).Enable(SiteKernelSyscall, SiteConfig{Rate: 1, Mode: ModePermanent})
	f := p.FaultAt(SiteKernelSyscall, 12)
	if f == nil {
		t.Fatal("expected a fault")
	}
	if !errors.Is(f, ErrInjected) {
		t.Error("fault does not match ErrInjected")
	}
	wrapped := fmt.Errorf("stage x: %w", f)
	if !errors.Is(wrapped, ErrInjected) {
		t.Error("wrapped fault does not match ErrInjected")
	}
	if f.Transient() {
		t.Error("permanent fault reports transient")
	}
	if IsTransient(wrapped) {
		t.Error("IsTransient true for permanent fault")
	}
	tf := &Fault{Site: SitePoolJob, Mode: ModeTransient}
	if !IsTransient(fmt.Errorf("wrap: %w", tf)) {
		t.Error("IsTransient false for wrapped transient fault")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("IsTransient true for plain error")
	}
	if IsTransient(nil) {
		t.Error("IsTransient true for nil")
	}
}

func TestKeyIsOrderAndBoundarySensitive(t *testing.T) {
	if Key("a", "bc") == Key("ab", "c") {
		t.Error("Key collides across part boundaries")
	}
	if Key("a", "b") == Key("b", "a") {
		t.Error("Key ignores part order")
	}
	if Key("x") == Key("x", "") {
		t.Error("Key ignores empty trailing part")
	}
}

func TestModeAndSiteStrings(t *testing.T) {
	if ModeTransient.String() != "transient" || ModePermanent.String() != "permanent" || Mode(9).String() != "mode?" {
		t.Error("mode strings wrong")
	}
	if len(Sites()) != 8 {
		t.Error("Sites() should list 8 sites")
	}
}

func TestDefaultPlanEnablesEverySite(t *testing.T) {
	p := Default(11)
	for _, site := range Sites() {
		cfg, ok := p.sites[site]
		if !ok || cfg.Rate <= 0 {
			t.Errorf("default plan leaves %s disabled", site)
		}
	}
	if p.Seed() != 11 {
		t.Errorf("seed = %d", p.Seed())
	}
}
