// Package trace implements dynamic instrumentation over the M64 VM — the
// repository's stand-in for DynamoRIO in the paper's pipeline. A Recorder
// observes a process run and produces the artifacts the Windows-side
// analyses consume:
//
//   - API call harvesting: which imported APIs were invoked, from which call
//     sites, and how often (§V-B "logged all calls to target API functions");
//   - context tagging: whether a call's stack passes through a designated
//     module set, e.g. the JavaScript engine ("triggered from a JavaScript
//     context");
//   - guarded-region coverage: which SEH scope-table ranges were actually
//     executed (Table II's "on execution path" column);
//   - exception events with virtual timestamps, feeding the §VII-C
//     fault-rate anomaly detector.
package trace

import (
	"sort"

	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// APISite is one call site of an API function.
type APISite struct {
	PC     uint64
	Module string
	Count  uint64
}

// APIStats aggregates observations of one API function.
type APIStats struct {
	ID    uint32
	Count uint64
	Sites []APISite
	// FromContext reports whether at least one invocation had a call
	// stack passing through a context module (e.g. the JS engine).
	FromContext bool
}

// ExcEvent is one observed exception.
type ExcEvent struct {
	Clock     uint64
	TID       int
	Code      uint32
	Addr      uint64
	PC        uint64
	Unmapped  bool
	Handled   bool
	HandlerPC uint64
}

// ScopeKey identifies a scope-table entry within a process.
type ScopeKey struct {
	Module string
	Index  int
}

// Recorder implements vm.Tracer. Enable the pieces you need; everything is
// off by default to keep per-instruction overhead down.
type Recorder struct {
	proc *vm.Process

	// API harvesting.
	harvestAPIs bool
	apis        map[uint32]*APIStats
	contextMods map[string]bool

	// Guarded-region coverage.
	coverage  bool
	covIndex  []covModule
	scopeHits map[ScopeKey]uint64
	lastMod   int // cache for PC locality

	// Exception log.
	recordExceptions bool
	exceptions       []ExcEvent
}

type covModule struct {
	mod *bin.Module
	// order holds scope indices sorted by Begin for binary search.
	order []int
}

var _ vm.Tracer = (*Recorder)(nil)

// NewRecorder creates an inactive recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		apis:        make(map[uint32]*APIStats),
		contextMods: make(map[string]bool),
		scopeHits:   make(map[ScopeKey]uint64),
	}
}

// Attach installs the recorder as the process tracer. Call after all images
// are loaded so coverage indexing sees every module.
func (r *Recorder) Attach(p *vm.Process) {
	r.proc = p
	p.Tracer = r
	r.buildCoverageIndex()
}

// EnableAPIHarvest turns on API call logging.
func (r *Recorder) EnableAPIHarvest() { r.harvestAPIs = true }

// EnableCoverage turns on guarded-region coverage (per-instruction cost).
func (r *Recorder) EnableCoverage() { r.coverage = true }

// EnableExceptionLog turns on exception recording.
func (r *Recorder) EnableExceptionLog() { r.recordExceptions = true }

// AddContextModule marks a module as a calling-context tag source (e.g. the
// JS engine DLL). API calls whose stack includes a frame in this module are
// flagged FromContext.
func (r *Recorder) AddContextModule(name string) { r.contextMods[name] = true }

// APIs returns harvested API stats keyed by API id.
func (r *Recorder) APIs() map[uint32]*APIStats { return r.apis }

// ScopeHits returns execution counts per scope-table entry.
func (r *Recorder) ScopeHits() map[ScopeKey]uint64 { return r.scopeHits }

// HitScopes returns the keys of scope entries seen on the execution path.
func (r *Recorder) HitScopes() []ScopeKey {
	out := make([]ScopeKey, 0, len(r.scopeHits))
	for k := range r.scopeHits {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Exceptions returns the recorded exception events.
func (r *Recorder) Exceptions() []ExcEvent {
	out := make([]ExcEvent, len(r.exceptions))
	copy(out, r.exceptions)
	return out
}

// ResetExceptions clears the exception log (between workload phases).
func (r *Recorder) ResetExceptions() { r.exceptions = nil }

// OnInstruction implements vm.Tracer: guarded-region coverage.
func (r *Recorder) OnInstruction(t *vm.Thread, pc uint64, _ isa.Instruction) {
	if !r.coverage {
		return
	}
	r.recordCoverage(pc)
}

// OnCall implements vm.Tracer.
func (r *Recorder) OnCall(*vm.Thread, uint64, uint64) {}

// OnRet implements vm.Tracer.
func (r *Recorder) OnRet(*vm.Thread, uint64) {}

// OnAPICall implements vm.Tracer: API harvesting + context tagging.
func (r *Recorder) OnAPICall(t *vm.Thread, callPC uint64, id uint32) {
	if !r.harvestAPIs {
		return
	}
	st, ok := r.apis[id]
	if !ok {
		st = &APIStats{ID: id}
		r.apis[id] = st
	}
	st.Count++

	modName := ""
	if m, ok := r.proc.FindModule(callPC); ok {
		modName = m.Image.Name
	}
	found := false
	for i := range st.Sites {
		if st.Sites[i].PC == callPC {
			st.Sites[i].Count++
			found = true
			break
		}
	}
	if !found {
		st.Sites = append(st.Sites, APISite{PC: callPC, Module: modName, Count: 1})
	}

	if !st.FromContext && len(r.contextMods) > 0 {
		if r.stackInContext(t) {
			st.FromContext = true
		}
	}
}

// OnException implements vm.Tracer.
func (r *Recorder) OnException(t *vm.Thread, exc vm.Exception) {
	if !r.recordExceptions {
		return
	}
	r.exceptions = append(r.exceptions, ExcEvent{
		Clock:    r.proc.Clock,
		TID:      t.ID,
		Code:     exc.Code,
		Addr:     exc.Addr,
		PC:       exc.PC,
		Unmapped: exc.Unmapped,
	})
}

// OnExceptionHandled implements vm.Tracer.
func (r *Recorder) OnExceptionHandled(t *vm.Thread, exc vm.Exception, handlerPC uint64) {
	if !r.recordExceptions || len(r.exceptions) == 0 {
		return
	}
	// Mark the most recent matching unhandled event.
	for i := len(r.exceptions) - 1; i >= 0; i-- {
		ev := &r.exceptions[i]
		if ev.TID == t.ID && ev.PC == exc.PC && !ev.Handled {
			ev.Handled = true
			ev.HandlerPC = handlerPC
			return
		}
	}
}

// stackInContext reports whether any shadow frame of t lies inside a context
// module.
func (r *Recorder) stackInContext(t *vm.Thread) bool {
	for _, f := range t.Frames() {
		if m, ok := r.proc.FindModule(f.FuncEntry); ok && r.contextMods[m.Image.Name] {
			return true
		}
	}
	return false
}

func (r *Recorder) buildCoverageIndex() {
	r.covIndex = r.covIndex[:0]
	for _, m := range r.proc.Modules() {
		scopes := m.Image.Scopes
		if len(scopes) == 0 {
			continue
		}
		order := make([]int, len(scopes))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return scopes[order[a]].Begin < scopes[order[b]].Begin
		})
		r.covIndex = append(r.covIndex, covModule{mod: m, order: order})
	}
}

// recordCoverage attributes an executed PC to covering scope entries.
func (r *Recorder) recordCoverage(pc uint64) {
	if len(r.covIndex) == 0 {
		return
	}
	// Check the cached module first (strong PC locality).
	mi := -1
	if r.lastMod < len(r.covIndex) && r.covIndex[r.lastMod].mod.Contains(pc) {
		mi = r.lastMod
	} else {
		for i := range r.covIndex {
			if r.covIndex[i].mod.Contains(pc) {
				mi = i
				r.lastMod = i
				break
			}
		}
	}
	if mi < 0 {
		return
	}
	cm := &r.covIndex[mi]
	scopes := cm.mod.Image.Scopes
	off := cm.mod.OffsetOf(pc)

	// Binary search: first index in order with Begin > off; candidates are
	// before it.
	hi := sort.Search(len(cm.order), func(i int) bool {
		return scopes[cm.order[i]].Begin > off
	})
	for i := hi - 1; i >= 0; i-- {
		s := scopes[cm.order[i]]
		if s.End <= off {
			// Ranges can nest, so keep scanning until begins are
			// far behind; with mostly-disjoint generated scopes a
			// small lookback suffices.
			if hi-i > 8 {
				break
			}
			continue
		}
		r.scopeHits[ScopeKey{Module: cm.mod.Image.Name, Index: cm.order[i]}]++
	}
}

// RatePerSecond computes the peak exception rate over a sliding window of
// the given width (in ticks), using kernel.TicksPerSecond-style scaling by
// the caller. It returns events-per-window maxima. Windows are half-open
// [t, t+window): an event exactly windowTicks after another starts a new
// window rather than joining the old one, matching the kernel's
// Clock/TicksPerSecond fault-bucket convention so detector math and the
// bucketed series agree on edge events.
func RatePerSecond(events []ExcEvent, windowTicks uint64) uint64 {
	if len(events) == 0 || windowTicks == 0 {
		return 0
	}
	var peak uint64
	lo := 0
	for hi := range events {
		for events[hi].Clock-events[lo].Clock >= windowTicks {
			lo++
		}
		if n := uint64(hi - lo + 1); n > peak {
			peak = n
		}
	}
	return peak
}
