package trace

import (
	"fmt"
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// stubAPI resolves any symbol to a sequential id and returns 0 from calls.
type stubAPI struct {
	ids   map[string]uint32
	calls []uint32
}

func newStubAPI() *stubAPI { return &stubAPI{ids: make(map[string]uint32)} }

func (s *stubAPI) Resolve(symbol string) (uint32, error) {
	if id, ok := s.ids[symbol]; ok {
		return id, nil
	}
	id := uint32(len(s.ids) + 1)
	s.ids[symbol] = id
	return id, nil
}

func (s *stubAPI) Call(p *vm.Process, t *vm.Thread, id uint32) *vm.Exception {
	s.calls = append(s.calls, id)
	t.SetReg(0, 0)
	return nil
}

func TestAPIHarvestAndContextTag(t *testing.T) {
	// jsengine.dll calls api "TargetFn"; main.exe calls api "OtherFn"
	// directly (no JS context).
	js := asm.NewBuilder("jsengine.dll", bin.KindLibrary)
	js.Func("invoke").
		CallImport("", "TargetFn").
		Ret().
		EndFunc()
	js.Export("invoke", "invoke")
	jsImg, err := js.Build()
	if err != nil {
		t.Fatal(err)
	}

	main := asm.NewBuilder("main.exe", bin.KindExecutable)
	main.Func("main").Entry("main").
		CallImport("", "OtherFn").
		CallImport("jsengine.dll", "invoke").
		CallImport("jsengine.dll", "invoke").
		Halt().
		EndFunc()
	mainImg, err := main.Build()
	if err != nil {
		t.Fatal(err)
	}

	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 4})
	api := newStubAPI()
	p.API = api
	if _, err := p.LoadImage(jsImg); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadImage(mainImg); err != nil {
		t.Fatal(err)
	}

	rec := NewRecorder()
	rec.EnableAPIHarvest()
	rec.AddContextModule("jsengine.dll")
	rec.Attach(p)

	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if p.State != vm.ProcExited {
		t.Fatalf("state = %v crash=%v", p.State, p.Crash)
	}

	targetID := api.ids["TargetFn"]
	otherID := api.ids["OtherFn"]

	ts, ok := rec.APIs()[targetID]
	if !ok {
		t.Fatal("TargetFn not harvested")
	}
	if ts.Count != 2 {
		t.Errorf("TargetFn count = %d, want 2", ts.Count)
	}
	if len(ts.Sites) != 1 || ts.Sites[0].Module != "jsengine.dll" || ts.Sites[0].Count != 2 {
		t.Errorf("TargetFn sites = %+v", ts.Sites)
	}
	if !ts.FromContext {
		t.Error("TargetFn should be tagged as called from JS context")
	}

	os, ok := rec.APIs()[otherID]
	if !ok {
		t.Fatal("OtherFn not harvested")
	}
	if os.FromContext {
		t.Error("OtherFn must not be tagged as JS context")
	}
	if os.Sites[0].Module != "main.exe" {
		t.Errorf("OtherFn site module = %q", os.Sites[0].Module)
	}
}

func TestCoverageRecordsGuardedRegions(t *testing.T) {
	b := asm.NewBuilder("app.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		Call("guarded").
		Halt().
		EndFunc()
	b.Func("guarded").
		Label("g0").
		Nop().
		Label("g0_end").
		Ret().
		Label("land").
		Ret().
		EndFunc()
	b.Func("cold").
		Label("c0").
		Nop().
		Label("c0_end").
		Ret().
		EndFunc()
	b.Guard("guarded", "g0", "g0_end", asm.CatchAll, "land")
	b.Guard("cold", "c0", "c0_end", asm.CatchAll, "c0")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 4})
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	rec.EnableCoverage()
	rec.Attach(p)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)

	hits := rec.HitScopes()
	if len(hits) != 1 {
		t.Fatalf("hit scopes = %v, want exactly the executed guard", hits)
	}
	if hits[0].Module != "app.exe" || hits[0].Index != 0 {
		t.Errorf("hit = %+v", hits[0])
	}
	if rec.ScopeHits()[hits[0]] == 0 {
		t.Error("hit count zero")
	}
}

func TestExceptionLog(t *testing.T) {
	b := asm.NewBuilder("app.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		MovRI(isa.R1, 0xbad0000).
		Label("try").
		Load(8, isa.R0, isa.R1, 0).
		Label("try_end").
		MovRI(isa.R1, 0xbad1000).
		Load(8, isa.R0, isa.R1, 0). // unguarded: crash
		Halt().
		Label("land").
		Jmp("try_end").
		EndFunc()
	b.Guard("main", "try", "try_end", asm.CatchAll, "land")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 4})
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	rec.EnableExceptionLog()
	rec.Attach(p)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)

	evs := rec.Exceptions()
	if len(evs) != 2 {
		t.Fatalf("exceptions = %d, want 2", len(evs))
	}
	if !evs[0].Handled || evs[0].HandlerPC == 0 {
		t.Errorf("first exception should be handled: %+v", evs[0])
	}
	if evs[1].Handled {
		t.Errorf("second exception should be fatal: %+v", evs[1])
	}
	if evs[0].Addr != 0xbad0000 || evs[1].Addr != 0xbad1000 {
		t.Errorf("addrs = %#x %#x", evs[0].Addr, evs[1].Addr)
	}
	if !evs[0].Unmapped {
		t.Error("unmapped flag lost")
	}

	rec.ResetExceptions()
	if len(rec.Exceptions()) != 0 {
		t.Error("ResetExceptions did not clear")
	}
}

func TestRatePerSecond(t *testing.T) {
	mk := func(clocks ...uint64) []ExcEvent {
		out := make([]ExcEvent, len(clocks))
		for i, c := range clocks {
			out[i] = ExcEvent{Clock: c}
		}
		return out
	}
	tests := []struct {
		name   string
		events []ExcEvent
		window uint64
		want   uint64
	}{
		{"empty", nil, 100, 0},
		{"zero window", mk(1, 2), 0, 0},
		{"all within", mk(1, 2, 3), 100, 3},
		{"spread", mk(0, 1000, 2000, 3000), 100, 1},
		{"burst", mk(0, 10, 20, 5000, 5010, 5020, 5030), 100, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RatePerSecond(tt.events, tt.window); got != tt.want {
				t.Errorf("RatePerSecond = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestRatePerSecondHalfOpenWindow pins the window convention to [t, t+w):
// an event exactly one window after another never shares a window with it,
// while one tick earlier both land in the same window. The defense
// engine's bucket evaluator (defense.Evaluate) assumes this convention.
func TestRatePerSecondHalfOpenWindow(t *testing.T) {
	const w = 1_000_000
	boundary := []ExcEvent{{Clock: 0}, {Clock: w}}
	if got := RatePerSecond(boundary, w); got != 1 {
		t.Errorf("events w apart: peak = %d, want 1 (window must be half-open)", got)
	}
	inside := []ExcEvent{{Clock: 0}, {Clock: w - 1}}
	if got := RatePerSecond(inside, w); got != 2 {
		t.Errorf("events w-1 apart: peak = %d, want 2", got)
	}
}

func TestRecorderNoopsWhenDisabled(t *testing.T) {
	b := asm.NewBuilder("app.exe", bin.KindExecutable)
	b.Func("main").Entry("main").Halt().EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 4})
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	rec.Attach(p)
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)
	if len(rec.APIs()) != 0 || len(rec.HitScopes()) != 0 || len(rec.Exceptions()) != 0 {
		t.Error("disabled recorder collected data")
	}
}

func ExampleRatePerSecond() {
	events := []ExcEvent{{Clock: 0}, {Clock: 50}, {Clock: 60}, {Clock: 5000}}
	fmt.Println(RatePerSecond(events, 100))
	// Output: 3
}
