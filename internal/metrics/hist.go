package metrics

// Log-bucketed latency histograms: HDR-style powers-of-two buckets over
// deterministic virtual-cost units ("ticks": emulator clock ticks, retired
// instructions or symbolic steps, depending on the stage).
//
// Determinism contract: every recorded value is a per-job quantity that the
// pipelines derive from the deterministic substrate, never from wall-clock
// time, and bucket increments commute. The final bucket contents, count,
// sum, max and quantiles are therefore identical at any worker count and
// across repeat runs of the same seed — which is also what makes them safe
// to merge across shards in any fixed order (the Registry merges completed
// runs keyed by pipeline/target/stage). Wall-clock durations stay in
// StageStats.WallNS and span records only.

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count: bucket 0 holds zero values, bucket i
// (1..64) holds values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i - 1].
const histBuckets = 65

// Hist is a concurrent log-bucketed histogram. Increments are atomic and
// commutative, so concurrent recording from pool workers yields identical
// final contents regardless of scheduling. A nil *Hist ignores Observe.
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot freezes the histogram into its serializable form, nil when
// nothing was recorded.
func (h *Hist) Snapshot() *HistSnapshot {
	if h == nil || h.count.Load() == 0 {
		return nil
	}
	s := &HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Hi: bucketHi(i), N: n})
		}
	}
	s.fillQuantiles()
	return s
}

// bucketHi returns the inclusive upper bound of bucket i.
func bucketHi(i int) uint64 {
	switch {
	case i == 0:
		return 0
	case i >= 64:
		return math.MaxUint64
	default:
		return (uint64(1) << i) - 1
	}
}

// HistBucket is one populated histogram bucket: N values were ≤ Hi (and
// above the previous bucket's bound).
type HistBucket struct {
	// Hi is the bucket's inclusive upper bound.
	Hi uint64 `json:"hi"`
	// N counts recorded values in the bucket.
	N uint64 `json:"n"`
}

// HistSnapshot is a frozen latency histogram, attached to StageStats and
// exportable as JSON. Values are deterministic virtual ticks, so snapshots
// are worker-count-invariant (see the file comment).
type HistSnapshot struct {
	// Count is the number of recorded values (one per completed job).
	Count uint64 `json:"count"`
	// Sum is the total of all recorded values.
	Sum uint64 `json:"sum"`
	// Max is the exact largest recorded value.
	Max uint64 `json:"max"`
	// P50, P95 and P99 are bucket-resolution quantiles (the upper bound of
	// the bucket the quantile falls in, clamped to Max).
	P50 uint64 `json:"p50"`
	P95 uint64 `json:"p95"`
	P99 uint64 `json:"p99"`
	// Buckets lists the populated buckets in ascending bound order.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Quantile returns the value below which fraction q of recordings fall, at
// bucket resolution: the upper bound of the covering bucket, clamped to the
// exact maximum. q outside (0, 1] is clamped.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			if b.Hi > s.Max {
				return s.Max
			}
			return b.Hi
		}
	}
	return s.Max
}

// fillQuantiles caches the display quantiles.
func (s *HistSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
}

// Merge accumulates another snapshot into s (bucket-wise addition). The
// operation commutes, so merging shard or run snapshots in any fixed order
// — the Registry merges by run completion, shard merges happen implicitly
// through atomic recording — produces identical contents.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	if o == nil {
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	merged := make([]HistBucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Hi < o.Buckets[j].Hi):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Hi < s.Buckets[i].Hi:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{Hi: s.Buckets[i].Hi, N: s.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	s.Buckets = merged
	s.fillQuantiles()
}

// Clone returns an independent copy of the snapshot.
func (s *HistSnapshot) Clone() *HistSnapshot {
	if s == nil {
		return nil
	}
	cp := *s
	cp.Buckets = append([]HistBucket(nil), s.Buckets...)
	return &cp
}
