package metrics

// Hierarchical span trees: run → pipeline → stage → shard → job. The
// worker pool in internal/discover opens a shard span per worker lane and a
// job span per claimed job, so a finished RunStats carries the full
// execution tree of the analysis, exportable as a Chrome trace (chrome.go).
//
// Span IDs are a deterministic function of the span's tree path (parent ID,
// kind, name, index), so the same job has the same ID at any worker count;
// only the wall-clock fields and the shard a job landed on are
// scheduling-dependent. Spans live exclusively in RunStats — report
// formatters never read them, keeping golden tables byte-identical.

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Span kinds, from root to leaf.
const (
	SpanRun      = "run"
	SpanPipeline = "pipeline"
	SpanStage    = "stage"
	SpanShard    = "shard"
	SpanJob      = "job"
)

// Span is one completed node of the run's span tree. Shard and Job are -1
// for levels the field does not apply to.
type Span struct {
	// ID is the span's deterministic identifier (hex).
	ID string `json:"id"`
	// Parent is the enclosing span's ID; empty for the root run span.
	Parent string `json:"parent,omitempty"`
	// Kind is run, pipeline, stage, shard or job.
	Kind string `json:"kind"`
	// Name is the span label (stage name, job key, ...).
	Name string `json:"name"`
	// Shard is the worker lane the span ran on (-1 above shard level).
	Shard int `json:"shard"`
	// Job is the job index within its stage (-1 above job level).
	Job int `json:"job"`
	// StartNS is the span's start, in nanoseconds since the run began.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's wall-clock duration.
	DurNS int64 `json:"dur_ns"`
}

// maxJobSpans bounds the job-level span records kept per run, so
// paper-scale fan-outs (tens of thousands of fuzz jobs) cannot balloon
// RunStats. Run, pipeline, stage and shard spans are never dropped;
// RunStats.SpansDropped counts the discarded job spans.
const maxJobSpans = 4096

// deriveSpanID hashes a span's tree path into its stable identifier.
func deriveSpanID(parent uint64, kind, name string, index int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(parent >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	for i := range buf {
		buf[i] = byte(uint64(index) >> (8 * i))
	}
	h.Write(buf[:])
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return id
}

// spanID renders an ID for the wire.
func spanID(id uint64) string { return fmt.Sprintf("%016x", id) }

// appendSpan records one completed span, dropping job spans past the cap.
func (c *Collector) appendSpan(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.Kind == SpanJob {
		if c.jobSpans >= maxJobSpans {
			c.spansDropped++
			return
		}
		c.jobSpans++
	}
	c.spans = append(c.spans, s)
}

// ShardSpan is one worker lane of a stage's pool run. Obtain via
// Stage.Shard; a nil *ShardSpan is a valid no-op receiver.
type ShardSpan struct {
	stage *Stage
	shard int
	id    uint64
	start time.Time
}

// Shard opens the span for worker lane w. The pool calls this once per
// worker; End must run when the lane finishes.
func (s *Stage) Shard(w int) *ShardSpan {
	if s == nil {
		return nil
	}
	return &ShardSpan{
		stage: s,
		shard: w,
		id:    deriveSpanID(s.id, SpanShard, s.name, w),
		start: time.Now(),
	}
}

// End closes the shard span, recording it in the run's span tree.
func (sh *ShardSpan) End() {
	if sh == nil {
		return
	}
	c := sh.stage.c
	c.appendSpan(Span{
		ID:      spanID(sh.id),
		Parent:  spanID(sh.stage.id),
		Kind:    SpanShard,
		Name:    fmt.Sprintf("%s/shard-%d", sh.stage.name, sh.shard),
		Shard:   sh.shard,
		Job:     -1,
		StartNS: sh.start.Sub(c.start).Nanoseconds(),
		DurNS:   time.Since(sh.start).Nanoseconds(),
	})
}

// JobSpan is one pool job's span. Obtain via ShardSpan.Job; a nil *JobSpan
// is a valid no-op receiver.
type JobSpan struct {
	shard *ShardSpan
	job   int
	name  string
	start time.Time
}

// Job opens the span for job index i on this lane. The job's ID derives
// from the stage (not the lane), so it is identical at any worker count;
// the Parent field records which lane actually ran it.
func (sh *ShardSpan) Job(i int) *JobSpan {
	if sh == nil {
		return nil
	}
	name := fmt.Sprintf("%s/job-%d", sh.stage.name, i)
	if sh.stage.jobName != nil {
		name = sh.stage.jobName(i)
	}
	return &JobSpan{shard: sh, job: i, name: name, start: time.Now()}
}

// End closes the job span.
func (j *JobSpan) End() {
	if j == nil {
		return
	}
	sh := j.shard
	c := sh.stage.c
	c.appendSpan(Span{
		ID:      spanID(deriveSpanID(sh.stage.id, SpanJob, j.name, j.job)),
		Parent:  spanID(sh.id),
		Kind:    SpanJob,
		Name:    j.name,
		Shard:   sh.shard,
		Job:     j.job,
		StartNS: j.start.Sub(c.start).Nanoseconds(),
		DurNS:   time.Since(j.start).Nanoseconds(),
	})
}

// NameJobs installs a job labeller for the stage's spans (API names, module
// names, syscall/arg keys). Call before fanning the stage out; without one,
// jobs are labelled "<stage>/job-<i>".
func (s *Stage) NameJobs(fn func(i int) string) {
	if s == nil {
		return
	}
	s.jobName = fn
}

// Observe records one job's deterministic virtual cost (emulator clock
// ticks, instructions or symbolic steps) in the stage's latency histogram.
// Safe from any worker goroutine; see hist.go for the determinism contract.
func (s *Stage) Observe(ticks uint64) {
	if s == nil {
		return
	}
	s.hist.Observe(ticks)
}
