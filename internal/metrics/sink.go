package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// Sink receives a run's live stage events and its final snapshot. Sinks
// attached to analyses that fan out across servers (AnalyzeServers) are
// shared between runs and must be safe for concurrent use; the sinks in
// this package all are.
type Sink interface {
	// Event receives one live stage event.
	Event(ev StageEvent)
	// Flush receives the final RunStats when the run completes. A
	// returned error propagates out of the analysis.
	Flush(stats *RunStats) error
}

// MemorySink retains events and snapshots in memory — the test and
// embedding-friendly sink.
type MemorySink struct {
	mu     sync.Mutex
	events []StageEvent
	runs   []*RunStats
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Event implements Sink.
func (m *MemorySink) Event(ev StageEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, ev)
}

// Flush implements Sink.
func (m *MemorySink) Flush(stats *RunStats) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs = append(m.runs, stats)
	return nil
}

// Events returns a copy of the recorded events in arrival order.
func (m *MemorySink) Events() []StageEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]StageEvent(nil), m.events...)
}

// Runs returns the flushed run snapshots in completion order.
func (m *MemorySink) Runs() []*RunStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*RunStats(nil), m.runs...)
}

// JSONSink writes each completed run's RunStats to a writer as one
// newline-terminated JSON document. Live events are not written.
type JSONSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONSink returns a sink writing snapshots to w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{w: w} }

// Event implements Sink (no-op: only snapshots are serialized).
func (j *JSONSink) Event(StageEvent) {}

// Flush implements Sink.
func (j *JSONSink) Flush(stats *RunStats) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	enc := json.NewEncoder(j.w)
	return enc.Encode(stats)
}

// ExpvarSink publishes counter totals into an expvar.Map, the standard
// library's process-metrics registry, so an embedding server can expose
// discovery-run counters on /debug/vars. Counter values accumulate across
// runs; "runs" counts completed analyses.
type ExpvarSink struct {
	m *expvar.Map
}

// expvarMu serializes expvar registration: expvar.Get followed by
// expvar.NewMap races when two goroutines construct sinks with the same name
// concurrently, and NewMap panics outright when the name is already
// published. The mutex makes get-or-publish atomic for this package.
var expvarMu sync.Mutex

// NewExpvarSink publishes (or reuses) the named expvar map. Safe to call any
// number of times with the same name, concurrently included: later calls
// accumulate into the first registration's map. If the name is already
// published as something other than an *expvar.Map, the sink falls back to a
// private unpublished map instead of panicking.
func NewExpvarSink(name string) *ExpvarSink {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if m, ok := v.(*expvar.Map); ok {
			return &ExpvarSink{m: m}
		}
		m := new(expvar.Map)
		m.Init()
		return &ExpvarSink{m: m}
	}
	return &ExpvarSink{m: expvar.NewMap(name)}
}

// Event implements Sink (no-op).
func (e *ExpvarSink) Event(StageEvent) {}

// Flush implements Sink.
func (e *ExpvarSink) Flush(stats *RunStats) error {
	for name, v := range stats.Counters {
		e.m.Add(name, int64(v))
	}
	e.m.Add("runs", 1)
	return nil
}
