package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"crashresist/internal/defense"
)

// detectRun builds a RunStats carrying a detection section: one hot
// primitive (the empirical nginx recv/arg1 anchor: 1 fault in 774 ticks),
// a live fault series loud enough to trip every default calibration, and a
// clean benign baseline.
func detectRun() *RunStats {
	return &RunStats{
		Pipeline: "syscall",
		Target:   "nginx",
		Detect: &defense.Section{
			Pipeline: "syscall",
			Target:   "nginx",
			Rows: []defense.Detectability{
				{Primitive: "recv/arg1", Probes: 1, Faults: 1, Ticks: 774},
			},
			Series:   map[uint64]uint64{0: 1000},
			Baseline: &defense.Baseline{Phase: "observe", Faults: 0, Ticks: 1000},
		},
	}
}

func TestDetectionFamilies(t *testing.T) {
	g := NewRegistry()
	if err := g.Flush(detectRun()); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE crashresist_detections_total counter",
		`crashresist_detections_total{pipeline="syscall",target="nginx",detector="vii-c-default"} 1`,
		`crashresist_detections_total{pipeline="syscall",target="nginx",detector="window-8s"} 1`,
		`crashresist_detections_total{pipeline="syscall",target="nginx",detector="ewma-alpha8"} 1`,
		"# TYPE crashresist_stealth_margin_probes_per_sec summary",
		`crashresist_stealth_margin_probes_per_sec{pipeline="syscall",target="nginx",quantile="0"} 64`,
		`crashresist_stealth_margin_probes_per_sec{pipeline="syscall",target="nginx",quantile="0.5"} 64`,
		`crashresist_stealth_margin_probes_per_sec{pipeline="syscall",target="nginx",quantile="1"} 64`,
		`crashresist_stealth_margin_probes_per_sec_sum{pipeline="syscall",target="nginx"} 64`,
		`crashresist_stealth_margin_probes_per_sec_count{pipeline="syscall",target="nginx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Detector names render in sorted order so the exposition is stable.
	ewma := strings.Index(out, `detector="ewma-alpha8"`)
	def := strings.Index(out, `detector="vii-c-default"`)
	w8 := strings.Index(out, `detector="window-8s"`)
	if !(ewma < def && def < w8) {
		t.Errorf("detector series out of sorted order: ewma@%d default@%d window-8s@%d", ewma, def, w8)
	}
}

// TestDetectionFamiliesCleanRun: a defended run with no trips still emits
// zero-valued detection series per calibration, so "defended and clean" is
// distinguishable from "not defended" on /metrics.
func TestDetectionFamiliesCleanRun(t *testing.T) {
	g := NewRegistry()
	stats := &RunStats{
		Pipeline: "syscall",
		Target:   "lighttpd",
		Detect: &defense.Section{
			Pipeline: "syscall",
			Target:   "lighttpd",
			Rows:     []defense.Detectability{{Primitive: "open/arg0", Probes: 1, Faults: 0, Ticks: 125}},
			Baseline: &defense.Baseline{Phase: "observe", Faults: 0, Ticks: 532},
		},
	}
	if err := g.Flush(stats); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`crashresist_detections_total{pipeline="syscall",target="lighttpd",detector="vii-c-default"} 0`,
		`crashresist_detections_total{pipeline="syscall",target="lighttpd",detector="window-8s"} 0`,
		`crashresist_detections_total{pipeline="syscall",target="lighttpd",detector="ewma-alpha8"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clean run missing zero-valued series %q:\n%s", want, out)
		}
	}
	// The only row is undetectable: no stealth-margin summary for it.
	if strings.Contains(out, `crashresist_stealth_margin_probes_per_sec{pipeline="syscall",target="lighttpd"`) {
		t.Errorf("stealth summary emitted for an all-undetectable section:\n%s", out)
	}
}

// TestDetectionAccumulatesAcrossFlushes: folding the same run twice doubles
// the live series, so the trip counts stay at one trip per calibration
// (first crossing only) while the folded totals double.
func TestDetectionAccumulatesAcrossFlushes(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < 2; i++ {
		if err := g.Flush(detectRun()); err != nil {
			t.Fatal(err)
		}
	}
	rep := g.DetectReport()
	if len(rep.Sections) != 1 {
		t.Fatalf("sections = %d, want 1", len(rep.Sections))
	}
	sec := rep.Sections[0]
	if len(sec.Rows) != 1 || sec.Rows[0].Probes != 2 || sec.Rows[0].Faults != 2 || sec.Rows[0].Ticks != 1548 {
		t.Errorf("row totals did not double: %+v", sec.Rows)
	}
	if sec.Rows[0].StealthMargin != 64 {
		t.Errorf("stealth margin drifted under accumulation: %d", sec.Rows[0].StealthMargin)
	}
	if sec.Series[0] != 2000 {
		t.Errorf("live series not accumulated: %v", sec.Series)
	}
	if len(sec.Events) != 3 {
		t.Errorf("live events = %+v, want one per calibration", sec.Events)
	}
}

func TestDefenseEndpoint(t *testing.T) {
	g := NewRegistry()
	if err := g.Flush(detectRun()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/defense")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/defense content type = %q", ct)
	}
	var rep defense.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/defense is not report JSON: %v\n%s", err, body)
	}
	if rep.Schema != defense.DetectSchema {
		t.Errorf("/defense schema = %q", rep.Schema)
	}
	if len(rep.Sections) != 1 || rep.Sections[0].Target != "nginx" {
		t.Errorf("/defense sections = %+v", rep.Sections)
	}

	res, err = srv.Client().Get(srv.URL + "/defense?format=top")
	if err != nil {
		t.Fatal(err)
	}
	top, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		"== detect: syscall/nginx ==",
		"baseline observe",
		"clean",
		"recv/arg1",
		"vii-c-default@",
	} {
		if !strings.Contains(string(top), want) {
			t.Errorf("/defense?format=top missing %q:\n%s", want, top)
		}
	}
}

// TestDefenseEndpointEmpty: a registry with no detection data still serves
// a valid empty report, never a 404 or a null body.
func TestDefenseEndpointEmpty(t *testing.T) {
	srv := httptest.NewServer(NewRegistry().Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/defense")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var rep defense.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("empty /defense not valid JSON: %v\n%s", err, body)
	}
	if rep.Schema != defense.DetectSchema || rep.Sections == nil || len(rep.Sections) != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}
