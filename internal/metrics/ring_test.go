package metrics

import "testing"

func TestRingPushEvicts(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 3; i++ {
		if old, ok := r.Push(i); ok {
			t.Fatalf("push %d evicted %d before capacity", i, old)
		}
	}
	if got := r.Items(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("items = %v", got)
	}
	old, ok := r.Push(4)
	if !ok || old != 1 {
		t.Fatalf("push past capacity: evicted %d ok=%v, want 1 true", old, ok)
	}
	if got := r.Items(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("items after eviction = %v", got)
	}
	if r.Len() != 3 || r.Cap() != 3 || r.Evicted() != 1 {
		t.Fatalf("len=%d cap=%d evicted=%d", r.Len(), r.Cap(), r.Evicted())
	}
}

func TestRingItemsIsACopy(t *testing.T) {
	r := NewRing[string](2)
	r.Push("a")
	items := r.Items()
	items[0] = "mutated"
	if got := r.Items()[0]; got != "a" {
		t.Fatalf("Items leaked internal storage: %q", got)
	}
}

// A zero-capacity ring accepts nothing: every push evicts its own value,
// so owners can disable retention without special cases.
func TestRingZeroCapacity(t *testing.T) {
	r := NewRing[int](0)
	old, ok := r.Push(7)
	if !ok || old != 7 {
		t.Fatalf("zero-cap push: evicted %d ok=%v, want 7 true", old, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("zero-cap ring holds %d items", r.Len())
	}
}
