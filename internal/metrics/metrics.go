// Package metrics is the pipeline observability layer: deterministic-safe
// counters and stage spans collected while a discovery run is in flight.
//
// The paper's evaluation is a funnel — how many syscalls, APIs and filters
// survive each stage — but the reports only capture the end state. This
// package makes the run itself observable: every analysis owns a Collector,
// layers below it (emulator, kernel, fuzzer, symbolic-execution cache,
// worker pool) add counters, and the pipeline marks stage boundaries. The
// final snapshot is a RunStats attached to the pipeline's report; live
// StageEvents stream to an optional progress callback and to Sinks.
//
// Determinism contract: counter totals are sums of per-job contributions,
// and jobs are scheduling-independent, so every counter except the
// per-shard task distribution is identical at any worker count. Wall-clock
// durations and shard distributions are explicitly non-deterministic and
// live only in RunStats — never in report rows — so golden tables stay
// byte-identical whether metrics are consumed or not.
package metrics

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crashresist/internal/defense"
)

// Counter identifies one monotonically increasing run counter.
type Counter uint8

// Counters. Totals are deterministic for a fixed seed and scale at any
// worker count (see the package comment for the contract).
const (
	// CtrInstructions counts instructions retired by analyzed processes.
	CtrInstructions Counter = iota
	// CtrFaults counts exceptions raised (page faults and others).
	CtrFaults
	// CtrFaultsUnmapped counts access violations on unmapped memory — the
	// class crash-resistant probing generates.
	CtrFaultsUnmapped
	// CtrFaultsHandled counts exceptions resolved by a handler.
	CtrFaultsHandled
	// CtrSyscalls counts syscalls dispatched by the kernel model.
	CtrSyscalls
	// CtrEFAULTReturns counts syscalls that completed with -EFAULT.
	CtrEFAULTReturns
	// CtrAPICalls counts Windows-model platform API invocations.
	CtrAPICalls
	// CtrProbes counts probes issued (fuzzing battery + oracle scans).
	CtrProbes
	// CtrProbesMapped counts probes that found mapped memory.
	CtrProbesMapped
	// CtrSymexCacheHits counts filter analyses answered from the cache.
	CtrSymexCacheHits
	// CtrSymexCacheMisses counts filter analyses executed and stored.
	CtrSymexCacheMisses
	// CtrSymexCacheUncacheable counts impure or symbol-less analyses.
	CtrSymexCacheUncacheable
	// CtrPoolTasks counts jobs executed by the discovery worker pool.
	CtrPoolTasks
	// CtrFaultsInjected counts failures fired by an attached fault plan
	// across all sites (VM, kernel, symex, pool).
	CtrFaultsInjected
	// CtrRetries counts job attempts re-run after a transient failure.
	CtrRetries
	// CtrBackoffTicks counts virtual backoff ticks accumulated between
	// retry attempts (1<<attempt per retry).
	CtrBackoffTicks
	// CtrDegraded counts jobs that exhausted their retries and were
	// recorded as degraded rather than aborting the run.
	CtrDegraded
	// CtrCacheHits counts analyses answered from the persistent
	// content-addressed cache (internal/cas).
	CtrCacheHits
	// CtrCacheMisses counts persistent-cache lookups that degraded to
	// recompute (absent, corrupt, I/O error, or injected fault).
	CtrCacheMisses
	// CtrCacheBadEntries counts persistent-cache entries that failed
	// validation (checksum, framing, or key mismatch).
	CtrCacheBadEntries
	// CtrCacheBytes counts persistent-cache entry bytes transferred:
	// read on hits plus written on stores.
	CtrCacheBytes
	// CtrDetections counts detection events raised by the defense
	// engine's calibration panel over the run's fault streams.
	CtrDetections

	numCounters
)

// String returns the counter's stable wire name.
func (c Counter) String() string {
	switch c {
	case CtrInstructions:
		return "instructions"
	case CtrFaults:
		return "faults"
	case CtrFaultsUnmapped:
		return "faults_unmapped"
	case CtrFaultsHandled:
		return "faults_handled"
	case CtrSyscalls:
		return "syscalls"
	case CtrEFAULTReturns:
		return "efault_returns"
	case CtrAPICalls:
		return "api_calls"
	case CtrProbes:
		return "probes"
	case CtrProbesMapped:
		return "probes_mapped"
	case CtrSymexCacheHits:
		return "symex_cache_hits"
	case CtrSymexCacheMisses:
		return "symex_cache_misses"
	case CtrSymexCacheUncacheable:
		return "symex_cache_uncacheable"
	case CtrPoolTasks:
		return "pool_tasks"
	case CtrFaultsInjected:
		return "faults_injected"
	case CtrRetries:
		return "retries"
	case CtrBackoffTicks:
		return "backoff_ticks"
	case CtrDegraded:
		return "degraded"
	case CtrCacheHits:
		return "cache_hits"
	case CtrCacheMisses:
		return "cache_misses"
	case CtrCacheBadEntries:
		return "cache_bad_entries"
	case CtrCacheBytes:
		return "cache_bytes"
	case CtrDetections:
		// "detection_events" keeps the plain {pipeline,target} counter
		// family distinct from crashresist_detections_total, which the
		// registry renders with a detector label from folded sections.
		return "detection_events"
	default:
		return fmt.Sprintf("counter_%d", uint8(c))
	}
}

// EventKind classifies a StageEvent.
type EventKind uint8

// Event kinds.
const (
	// StageBegin fires when a pipeline stage starts.
	StageBegin EventKind = iota + 1
	// StageProgress fires after each completed job within a stage.
	StageProgress
	// StageEnd fires when a stage finishes.
	StageEnd
	// StageDetection fires when a defense detector trips; the event
	// carries the typed DetectionEvent record.
	StageDetection
)

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	switch k {
	case StageBegin:
		return "begin"
	case StageProgress:
		return "progress"
	case StageEnd:
		return "end"
	case StageDetection:
		return "detection"
	default:
		return fmt.Sprintf("kind_%d", uint8(k))
	}
}

// MarshalJSON encodes the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a kind from its string name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for _, v := range []EventKind{StageBegin, StageProgress, StageEnd, StageDetection} {
		if v.String() == s {
			*k = v
			return nil
		}
	}
	return fmt.Errorf("unknown event kind %q", s)
}

// StageEvent is one live progress notification. Events are serialized per
// Collector: callbacks never run concurrently for the same run.
type StageEvent struct {
	// Pipeline names the running pipeline: syscall, api or seh.
	Pipeline string `json:"pipeline"`
	// Target names the analysis subject (server or browser name).
	Target string `json:"target,omitempty"`
	// Stage names the span the event belongs to.
	Stage string `json:"stage"`
	// Kind is begin, progress or end.
	Kind EventKind `json:"kind"`
	// Done is the number of completed jobs in the stage so far.
	Done int `json:"done"`
	// Total is the job count of the stage (0 when not job-structured).
	Total int `json:"total"`
	// Detection carries the typed detector verdict on StageDetection
	// events; nil otherwise.
	Detection *defense.DetectionEvent `json:"detection,omitempty"`
}

// StageStats is the completed record of one pipeline stage.
type StageStats struct {
	// Name is the span name (taint, validate, fuzz, symex, ...).
	Name string `json:"name"`
	// Jobs is how many pool jobs the stage fanned out (0 when the stage
	// is a single unit of work).
	Jobs int `json:"jobs"`
	// ShardTasks is the per-worker task distribution when the stage ran
	// on the worker pool. The total is deterministic; the split is not.
	ShardTasks []int `json:"shard_tasks,omitempty"`
	// WallNS is the stage's wall-clock duration. Non-deterministic.
	WallNS int64 `json:"wall_ns"`
	// Latency is the stage's per-job virtual-cost histogram (nil when the
	// stage recorded none). Contents are deterministic: identical at any
	// worker count and across repeat runs of the same seed (see hist.go).
	Latency *HistSnapshot `json:"latency,omitempty"`
}

// RunStats is the observability record of one analysis run, attached to the
// pipeline's report and exportable as JSON.
type RunStats struct {
	// Pipeline is syscall, api or seh.
	Pipeline string `json:"pipeline"`
	// Target is the analyzed server or browser name.
	Target string `json:"target,omitempty"`
	// Workers is the resolved worker-pool bound for the run.
	Workers int `json:"workers"`
	// Counters holds the final counter totals keyed by Counter name.
	Counters map[string]uint64 `json:"counters"`
	// Stages lists the stage spans in execution order.
	Stages []StageStats `json:"stages,omitempty"`
	// Spans is the run's hierarchical span tree (run → pipeline → stage →
	// shard → job), ordered by start time. Span IDs are deterministic;
	// wall-clock fields and shard placement are not (see span.go).
	Spans []Span `json:"spans,omitempty"`
	// SpansDropped counts job spans discarded past the per-run cap.
	SpansDropped int `json:"spans_dropped,omitempty"`
	// FaultEvents is the run's fault-event time series: -EFAULT syscall
	// completions bucketed by the virtual second of the emitting process's
	// clock, summed across all analyzed processes. Deterministic for a
	// fixed seed at any worker count (bucket sums commute).
	FaultEvents map[uint64]uint64 `json:"fault_events,omitempty"`
	// Detect is the run's detection record — the defense engine's
	// per-primitive detectability rows, benign baseline, and the
	// detections raised over the run's fault streams. Stats-adjacent like
	// everything else here: report formatters never read it, so golden
	// table bytes are identical with detection on or off. Deterministic
	// for a fixed request at any worker count and cache state.
	Detect *defense.Section `json:"detect,omitempty"`
	// WallNS is the whole run's wall-clock duration. Non-deterministic.
	WallNS int64 `json:"wall_ns"`
}

// Counter returns a counter total by enum, 0 when absent.
func (r *RunStats) Counter(c Counter) uint64 {
	if r == nil {
		return 0
	}
	return r.Counters[c.String()]
}

// Format renders the stats as an indented text block for terminal output.
func (r *RunStats) Format() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run stats — pipeline=%s", r.Pipeline)
	if r.Target != "" {
		fmt.Fprintf(&b, " target=%s", r.Target)
	}
	fmt.Fprintf(&b, " workers=%d wall=%s\n", r.Workers, time.Duration(r.WallNS))
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("  counters:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.Counters[k])
	}
	b.WriteString("\n")
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "  stage %-10s jobs=%-6d wall=%s", st.Name, st.Jobs, time.Duration(st.WallNS))
		if len(st.ShardTasks) > 0 {
			fmt.Fprintf(&b, " shard-tasks=%v", st.ShardTasks)
		}
		if st.Latency != nil {
			fmt.Fprintf(&b, " ticks{p50=%d p95=%d p99=%d max=%d}", st.Latency.P50, st.Latency.P95, st.Latency.P99, st.Latency.Max)
		}
		b.WriteString("\n")
	}
	if len(r.Spans) > 0 {
		fmt.Fprintf(&b, "  spans: %d recorded", len(r.Spans))
		if r.SpansDropped > 0 {
			fmt.Fprintf(&b, " (%d job spans dropped past the cap)", r.SpansDropped)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Collector gathers counters and stage spans for one analysis run. Counter
// updates are lock-free and safe from any worker goroutine; stage and event
// bookkeeping is serialized internally. A nil *Collector is a valid no-op
// receiver for every method, so instrumentation points need no nil checks.
type Collector struct {
	pipeline string
	target   string
	workers  int
	start    time.Time

	// runID and pipeID anchor the span tree; derived deterministically
	// from the run's identity (see span.go).
	runID  uint64
	pipeID uint64

	counts [numCounters]atomic.Uint64

	// emitting is non-zero when a progress callback or sink is attached;
	// workers check it before paying for event serialization.
	emitting atomic.Bool

	mu           sync.Mutex
	faultEvents  map[uint64]uint64
	detect       *defense.Section
	stages       []StageStats
	stageSeq     int
	spans        []Span
	jobSpans     int
	spansDropped int
	progress     func(StageEvent)
	sinks        []Sink
}

// NewCollector starts a collector for one pipeline run. workers is the
// resolved pool bound recorded in the snapshot.
func NewCollector(pipeline, target string, workers int) *Collector {
	runID := deriveSpanID(0, SpanRun, target, 0)
	return &Collector{
		pipeline: pipeline,
		target:   target,
		workers:  workers,
		start:    time.Now(),
		runID:    runID,
		pipeID:   deriveSpanID(runID, SpanPipeline, pipeline, 0),
	}
}

// SetProgress installs a live progress callback. Events for one collector
// are serialized; when multiple analyses run in parallel (AnalyzeServers),
// each has its own collector, so the callback must tolerate interleaving
// across runs (the public API wraps callbacks with a mutex).
func (c *Collector) SetProgress(fn func(StageEvent)) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	c.progress = fn
	c.mu.Unlock()
	c.emitting.Store(true)
}

// AddSink attaches a sink receiving live events and the final snapshot.
func (c *Collector) AddSink(s Sink) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	c.sinks = append(c.sinks, s)
	c.mu.Unlock()
	c.emitting.Store(true)
}

// Add increments a counter. Safe from any goroutine; additions commute, so
// totals are deterministic regardless of scheduling.
func (c *Collector) Add(ctr Counter, n uint64) {
	if c == nil || ctr >= numCounters {
		return
	}
	c.counts[ctr].Add(n)
}

// AddFaultEvents folds one process's fault-event time series (kernel
// -EFAULT completions bucketed by virtual second) into the run's series.
// Bucket additions commute, so the accumulated series is deterministic at
// any worker count. Safe from any goroutine.
func (c *Collector) AddFaultEvents(buckets map[uint64]uint64) {
	if c == nil || len(buckets) == 0 {
		return
	}
	c.mu.Lock()
	if c.faultEvents == nil {
		c.faultEvents = make(map[uint64]uint64)
	}
	for b, n := range buckets {
		c.faultEvents[b] += n
	}
	c.mu.Unlock()
}

// SetDetect attaches the run's detection record so the final RunStats
// carries it to sinks and report stats. Call before Finish.
func (c *Collector) SetDetect(sec *defense.Section) {
	if c == nil || sec == nil {
		return
	}
	c.mu.Lock()
	c.detect = sec
	c.mu.Unlock()
}

// Detection emits one typed detector verdict into the live event stream
// (progress callback + sinks) and counts it in CtrDetections.
func (c *Collector) Detection(ev defense.DetectionEvent) {
	if c == nil {
		return
	}
	c.Add(CtrDetections, 1)
	c.emit(StageEvent{Stage: "detect", Kind: StageDetection, Detection: &ev})
}

// emit delivers one event to the progress callback and sinks, serialized.
func (c *Collector) emit(ev StageEvent) {
	if c == nil || !c.emitting.Load() {
		return
	}
	ev.Pipeline = c.pipeline
	ev.Target = c.target
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.progress != nil {
		c.progress(ev)
	}
	for _, s := range c.sinks {
		s.Event(ev)
	}
}

// Stage is one in-flight pipeline span. Obtain via StartStage; a nil *Stage
// is a valid no-op receiver.
type Stage struct {
	c       *Collector
	name    string
	id      uint64
	jobs    int
	done    atomic.Int64
	start   time.Time
	hist    *Hist
	jobName func(i int) string

	mu     sync.Mutex
	shards []int
	ended  bool
}

// StartStage begins a span. jobs is the stage's fan-out width (0 for
// single-unit stages). The matching End must run on the starting goroutine
// so span order in RunStats is deterministic.
func (c *Collector) StartStage(name string, jobs int) *Stage {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	seq := c.stageSeq
	c.stageSeq++
	c.mu.Unlock()
	s := &Stage{
		c:     c,
		name:  name,
		id:    deriveSpanID(c.pipeID, SpanStage, name, seq),
		jobs:  jobs,
		start: time.Now(),
		hist:  new(Hist),
	}
	c.emit(StageEvent{Stage: name, Kind: StageBegin, Total: jobs})
	return s
}

// JobDone records one completed job, emitting a progress event. Safe from
// any worker goroutine.
func (s *Stage) JobDone() {
	if s == nil {
		return
	}
	done := int(s.done.Add(1))
	s.c.emit(StageEvent{Stage: s.name, Kind: StageProgress, Done: done, Total: s.jobs})
}

// ShardTasks records the per-worker task distribution of the stage's pool
// run. The total also feeds CtrPoolTasks.
func (s *Stage) ShardTasks(tasks []int) {
	if s == nil {
		return
	}
	total := 0
	for _, n := range tasks {
		total += n
	}
	s.c.Add(CtrPoolTasks, uint64(total))
	s.mu.Lock()
	s.shards = append([]int(nil), tasks...)
	s.mu.Unlock()
}

// End closes the span, appending it to the run's stage list.
func (s *Stage) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	shards := s.shards
	s.mu.Unlock()

	done := int(s.done.Load())
	st := StageStats{
		Name:       s.name,
		Jobs:       s.jobs,
		ShardTasks: shards,
		WallNS:     time.Since(s.start).Nanoseconds(),
		Latency:    s.hist.Snapshot(),
	}
	s.c.mu.Lock()
	s.c.stages = append(s.c.stages, st)
	s.c.mu.Unlock()
	s.c.appendSpan(Span{
		ID:      spanID(s.id),
		Parent:  spanID(s.c.pipeID),
		Kind:    SpanStage,
		Name:    s.name,
		Shard:   -1,
		Job:     -1,
		StartNS: s.start.Sub(s.c.start).Nanoseconds(),
		DurNS:   st.WallNS,
	})
	s.c.emit(StageEvent{Stage: s.name, Kind: StageEnd, Done: done, Total: s.jobs})
}

// Snapshot produces the run's RunStats without flushing sinks.
func (c *Collector) Snapshot() *RunStats {
	if c == nil {
		return nil
	}
	counters := make(map[string]uint64, int(numCounters))
	for i := Counter(0); i < numCounters; i++ {
		if v := c.counts[i].Load(); v > 0 {
			counters[i.String()] = v
		}
	}
	wall := time.Since(c.start).Nanoseconds()
	c.mu.Lock()
	faults := maps.Clone(c.faultEvents)
	detect := c.detect
	stages := append([]StageStats(nil), c.stages...)
	spans := make([]Span, 0, len(c.spans)+2)
	spans = append(spans,
		Span{ID: spanID(c.runID), Kind: SpanRun, Name: c.target, Shard: -1, Job: -1, DurNS: wall},
		Span{ID: spanID(c.pipeID), Parent: spanID(c.runID), Kind: SpanPipeline, Name: c.pipeline, Shard: -1, Job: -1, DurNS: wall})
	spans = append(spans, c.spans...)
	dropped := c.spansDropped
	c.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })
	return &RunStats{
		Pipeline:     c.pipeline,
		Target:       c.target,
		Workers:      c.workers,
		Counters:     counters,
		Stages:       stages,
		Spans:        spans,
		SpansDropped: dropped,
		FaultEvents:  faults,
		Detect:       detect,
		WallNS:       wall,
	}
}

// Finish snapshots the run and flushes every attached sink. The first sink
// error is returned; the stats are valid either way.
func (c *Collector) Finish() (*RunStats, error) {
	if c == nil {
		return nil, nil
	}
	stats := c.Snapshot()
	c.mu.Lock()
	sinks := append([]Sink(nil), c.sinks...)
	c.mu.Unlock()
	var firstErr error
	for _, s := range sinks {
		if err := s.Flush(stats); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return stats, firstErr
}
