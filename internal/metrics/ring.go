package metrics

// Ring is a bounded FIFO retention buffer: once full, each Push evicts the
// oldest element. The Registry keeps its recent-run trace ring in one, and
// the discovery service (internal/service) retains completed job results
// the same way, so both retention surfaces share one eviction policy.
//
// Ring is not synchronized; owners guard it with their own mutex.
type Ring[T any] struct {
	cap     int
	items   []T
	evicted uint64
}

// NewRing returns a ring retaining at most capacity elements. A capacity
// <= 0 yields a ring that retains nothing (every Push evicts immediately).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Ring[T]{cap: capacity}
}

// Push appends v, evicting and returning the oldest element once the ring
// is full. The boolean reports whether an eviction happened.
func (r *Ring[T]) Push(v T) (evicted T, ok bool) {
	if r.cap == 0 {
		r.evicted++
		return v, true
	}
	if len(r.items) == r.cap {
		evicted = r.items[0]
		ok = true
		r.evicted++
		copy(r.items, r.items[1:])
		r.items[len(r.items)-1] = v
		return evicted, ok
	}
	r.items = append(r.items, v)
	return evicted, false
}

// Items returns the retained elements, oldest first. The slice is a copy.
func (r *Ring[T]) Items() []T {
	return append([]T(nil), r.items...)
}

// Len returns the number of retained elements.
func (r *Ring[T]) Len() int { return len(r.items) }

// Cap returns the ring's bound.
func (r *Ring[T]) Cap() int { return r.cap }

// Evicted returns how many elements have been pushed out over the ring's
// lifetime.
func (r *Ring[T]) Evicted() uint64 { return r.evicted }
