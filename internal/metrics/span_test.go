package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildTracedRun drives a collector through a small staged run the way the
// discover pool does, returning the finished stats.
func buildTracedRun(t *testing.T, workers int) *RunStats {
	t.Helper()
	c := NewCollector("seh", "iexplore", workers)
	st := c.StartStage("symex", 4)
	st.NameJobs(func(i int) string { return "symex/mod" + string(rune('a'+i)) })
	tasks := make([]int, workers)
	for w := 0; w < workers; w++ {
		sh := st.Shard(w)
		for i := w; i < 4; i += workers {
			js := sh.Job(i)
			st.Observe(uint64(100 * (i + 1)))
			st.JobDone()
			js.End()
			tasks[w]++
		}
		sh.End()
	}
	st.ShardTasks(tasks)
	st.End()
	stats, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestSpanTreeStructure(t *testing.T) {
	stats := buildTracedRun(t, 2)

	byKind := map[string][]Span{}
	byID := map[string]Span{}
	for _, s := range stats.Spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
		byID[s.ID] = s
	}
	if len(byKind[SpanRun]) != 1 || len(byKind[SpanPipeline]) != 1 || len(byKind[SpanStage]) != 1 {
		t.Fatalf("span kinds = run:%d pipeline:%d stage:%d, want 1 each",
			len(byKind[SpanRun]), len(byKind[SpanPipeline]), len(byKind[SpanStage]))
	}
	if len(byKind[SpanShard]) != 2 || len(byKind[SpanJob]) != 4 {
		t.Fatalf("span kinds = shard:%d job:%d, want 2/4", len(byKind[SpanShard]), len(byKind[SpanJob]))
	}

	// Every non-root span's parent must exist, and the chain must reach the
	// run span: job → shard → stage → pipeline → run.
	run := byKind[SpanRun][0]
	if run.Parent != "" {
		t.Errorf("run span has parent %q", run.Parent)
	}
	for _, s := range stats.Spans {
		if s.Kind == SpanRun {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %s (%s) has dangling parent %s", s.ID, s.Name, s.Parent)
		}
	}
	for _, j := range byKind[SpanJob] {
		sh := byID[j.Parent]
		if sh.Kind != SpanShard {
			t.Errorf("job %s parent kind = %s, want shard", j.Name, sh.Kind)
		}
		if j.Shard != sh.Shard {
			t.Errorf("job %s shard = %d, parent lane = %d", j.Name, j.Shard, sh.Shard)
		}
	}
	// The labeller names the jobs.
	if byKind[SpanJob][0].Name == "" || !strings.HasPrefix(byKind[SpanJob][0].Name, "symex/mod") {
		t.Errorf("job name = %q, want labelled", byKind[SpanJob][0].Name)
	}
	if stats.SpansDropped != 0 {
		t.Errorf("spans dropped = %d, want 0", stats.SpansDropped)
	}
}

// TestSpanIDsWorkerInvariant checks the determinism half of the span
// contract: run/pipeline/stage/job IDs depend only on the tree path, never
// on which lane ran the job or how many lanes existed.
func TestSpanIDsWorkerInvariant(t *testing.T) {
	ids := func(stats *RunStats) map[string]string {
		m := map[string]string{}
		for _, s := range stats.Spans {
			if s.Kind == SpanShard {
				continue // lanes legitimately differ with worker count
			}
			m[s.Kind+"/"+s.Name] = s.ID
		}
		return m
	}
	one := ids(buildTracedRun(t, 1))
	four := ids(buildTracedRun(t, 4))
	if len(one) != len(four) {
		t.Fatalf("span sets differ: %d vs %d", len(one), len(four))
	}
	for k, id := range one {
		if four[k] != id {
			t.Errorf("span %q id %s at workers=1 but %s at workers=4", k, id, four[k])
		}
	}
}

func TestJobSpanCap(t *testing.T) {
	c := NewCollector("api", "iexplore", 1)
	st := c.StartStage("fuzz", maxJobSpans+10)
	sh := st.Shard(0)
	for i := 0; i < maxJobSpans+10; i++ {
		js := sh.Job(i)
		st.JobDone()
		js.End()
	}
	sh.End()
	st.End()
	stats, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	jobs := 0
	for _, s := range stats.Spans {
		if s.Kind == SpanJob {
			jobs++
		}
	}
	if jobs != maxJobSpans {
		t.Errorf("job spans = %d, want cap %d", jobs, maxJobSpans)
	}
	if stats.SpansDropped != 10 {
		t.Errorf("spans dropped = %d, want 10", stats.SpansDropped)
	}
	// Control spans survive the cap.
	kinds := map[string]bool{}
	for _, s := range stats.Spans {
		kinds[s.Kind] = true
	}
	for _, k := range []string{SpanRun, SpanPipeline, SpanStage, SpanShard} {
		if !kinds[k] {
			t.Errorf("missing %s span after job-span cap", k)
		}
	}
}

func TestNilSpanReceivers(t *testing.T) {
	var st *Stage
	st.NameJobs(func(int) string { return "x" })
	st.Observe(1)
	sh := st.Shard(0)
	js := sh.Job(0)
	js.End()
	sh.End() // none of this may panic
}

func TestChromeTraceExport(t *testing.T) {
	stats := buildTracedRun(t, 2)
	var buf strings.Builder
	if err := WriteChromeTrace(&buf, stats); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	var complete, meta int
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			cats[ev.Cat]++
			if ev.Pid != 1 {
				t.Errorf("event %q pid = %d, want 1", ev.Name, ev.Pid)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != len(stats.Spans) {
		t.Errorf("complete events = %d, want %d", complete, len(stats.Spans))
	}
	for _, k := range []string{SpanRun, SpanPipeline, SpanStage, SpanShard, SpanJob} {
		if cats[k] == 0 {
			t.Errorf("no %q events in trace", k)
		}
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Errorf("metadata events = %d, want >= 2", meta)
	}
	// A nil run contributes nothing and must not panic.
	var empty strings.Builder
	if err := WriteChromeTrace(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(empty.String())) {
		t.Errorf("empty trace not valid JSON: %s", empty.String())
	}
}
