package metrics

// Prometheus text-format exposition and the live serving surface. Registry
// is a Sink that accumulates completed runs — counter totals keyed by
// (pipeline, target), latency histograms merged per (pipeline, target,
// stage) — and renders them in Prometheus exposition format. Handler wires
// the registry, expvar and net/http/pprof into one mux for cmd/crmon and
// `crdiscover -serve`.

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"crashresist/internal/defense"
	"crashresist/internal/prof"
)

// tracedRuns bounds the recent-run ring served on /trace.json.
const tracedRuns = 8

// promLabels identifies one counter series.
type promLabels struct {
	pipeline string
	target   string
}

// promStageLabels identifies one histogram series.
type promStageLabels struct {
	pipeline string
	target   string
	stage    string
}

// Registry accumulates completed runs for live exposition. It implements
// Sink, is safe for concurrent use, and can be attached to any number of
// analyses in one process.
type Registry struct {
	mu       sync.Mutex
	counters map[promLabels]map[string]uint64
	runs     map[promLabels]uint64
	wallNS   map[promLabels]int64
	hists    map[promStageLabels]*HistSnapshot
	faults   map[promLabels]map[uint64]uint64
	recent   *Ring[*RunStats]
	profile  *prof.Profile
	// detect folds every flushed run's detection section (RunStats.Detect)
	// so /defense and the detection families serve a process-wide view.
	// It carries its own lock; fold and snapshot calls happen outside mu.
	detect *defense.Detect
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[promLabels]map[string]uint64),
		runs:     make(map[promLabels]uint64),
		wallNS:   make(map[promLabels]int64),
		hists:    make(map[promStageLabels]*HistSnapshot),
		faults:   make(map[promLabels]map[uint64]uint64),
		recent:   NewRing[*RunStats](tracedRuns),
		detect:   defense.NewDetect(),
	}
}

// DetectReport snapshots the detectability report folded from every
// flushed run that carried a detection section; empty when none did.
func (g *Registry) DetectReport() *defense.Report {
	if g == nil {
		return defense.NewDetect().Snapshot()
	}
	return g.detect.Snapshot()
}

// SetProfile attaches the cost profile served on /profile. The registry
// does not copy it: callers keep charging into the same profile while it
// is served, and Snapshot captures a consistent view per request.
func (g *Registry) SetProfile(p *prof.Profile) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.profile = p
	g.mu.Unlock()
}

// Profile returns the attached cost profile, nil when none was set.
func (g *Registry) Profile() *prof.Profile {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.profile
}

// Event implements Sink (no-op: the registry aggregates completed runs).
func (g *Registry) Event(StageEvent) {}

// Flush implements Sink, folding one completed run into the registry.
func (g *Registry) Flush(stats *RunStats) error {
	if g == nil || stats == nil {
		return nil
	}
	g.detect.FoldSection(stats.Detect)
	g.mu.Lock()
	defer g.mu.Unlock()
	key := promLabels{pipeline: stats.Pipeline, target: stats.Target}
	cm := g.counters[key]
	if cm == nil {
		cm = make(map[string]uint64)
		g.counters[key] = cm
	}
	for name, v := range stats.Counters {
		cm[name] += v
	}
	g.runs[key]++
	g.wallNS[key] = stats.WallNS
	if len(stats.FaultEvents) > 0 {
		fm := g.faults[key]
		if fm == nil {
			fm = make(map[uint64]uint64)
			g.faults[key] = fm
		}
		for b, n := range stats.FaultEvents {
			fm[b] += n
		}
	}
	for _, st := range stats.Stages {
		if st.Latency == nil {
			continue
		}
		hk := promStageLabels{pipeline: stats.Pipeline, target: stats.Target, stage: st.Name}
		h := g.hists[hk]
		if h == nil {
			h = &HistSnapshot{}
			g.hists[hk] = h
		}
		h.Merge(st.Latency)
	}
	g.recent.Push(stats)
	return nil
}

// Runs returns the retained recent run snapshots, oldest first.
func (g *Registry) Runs() []*RunStats {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recent.Items()
}

// promLabelPair renders the {pipeline,target} label set.
func (l promLabels) String() string {
	return fmt.Sprintf(`pipeline=%q,target=%q`, l.pipeline, l.target)
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): one counter family per run counter, a summary-style
// family for stage latency quantiles, and a cumulative bucket family.
// Series are emitted in sorted order so scrapes are diff-stable.
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	type counterSeries struct {
		name   string
		labels promLabels
		v      uint64
	}
	var counters []counterSeries
	for labels, cm := range g.counters {
		for name, v := range cm {
			counters = append(counters, counterSeries{name: name, labels: labels, v: v})
		}
	}
	type runSeries struct {
		labels promLabels
		runs   uint64
		wallNS int64
	}
	var runs []runSeries
	for labels, n := range g.runs {
		runs = append(runs, runSeries{labels: labels, runs: n, wallNS: g.wallNS[labels]})
	}
	type histSeries struct {
		labels promStageLabels
		h      *HistSnapshot
	}
	var hists []histSeries
	for labels, h := range g.hists {
		hists = append(hists, histSeries{labels: labels, h: h.Clone()})
	}
	type faultSeries struct {
		labels promLabels
		bucket uint64
		v      uint64
	}
	var faults []faultSeries
	for labels, fm := range g.faults {
		for b, v := range fm {
			faults = append(faults, faultSeries{labels: labels, bucket: b, v: v})
		}
	}
	g.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		a, b := counters[i], counters[j]
		if a.name != b.name {
			return a.name < b.name
		}
		if a.labels.pipeline != b.labels.pipeline {
			return a.labels.pipeline < b.labels.pipeline
		}
		return a.labels.target < b.labels.target
	})
	sort.Slice(runs, func(i, j int) bool {
		a, b := runs[i], runs[j]
		if a.labels.pipeline != b.labels.pipeline {
			return a.labels.pipeline < b.labels.pipeline
		}
		return a.labels.target < b.labels.target
	})
	sort.Slice(faults, func(i, j int) bool {
		a, b := faults[i], faults[j]
		if a.labels.pipeline != b.labels.pipeline {
			return a.labels.pipeline < b.labels.pipeline
		}
		if a.labels.target != b.labels.target {
			return a.labels.target < b.labels.target
		}
		return a.bucket < b.bucket
	})
	sort.Slice(hists, func(i, j int) bool {
		a, b := hists[i].labels, hists[j].labels
		if a.pipeline != b.pipeline {
			return a.pipeline < b.pipeline
		}
		if a.target != b.target {
			return a.target < b.target
		}
		return a.stage < b.stage
	})

	var b strings.Builder
	lastFamily := ""
	for _, c := range counters {
		family := "crashresist_" + c.name + "_total"
		if family != lastFamily {
			fmt.Fprintf(&b, "# HELP %s Run counter %q accumulated across completed analyses.\n", family, c.name)
			fmt.Fprintf(&b, "# TYPE %s counter\n", family)
			lastFamily = family
		}
		fmt.Fprintf(&b, "%s{%s} %d\n", family, c.labels, c.v)
	}
	if len(runs) > 0 {
		b.WriteString("# HELP crashresist_runs_total Completed analysis runs.\n")
		b.WriteString("# TYPE crashresist_runs_total counter\n")
		for _, r := range runs {
			fmt.Fprintf(&b, "crashresist_runs_total{%s} %d\n", r.labels, r.runs)
		}
		b.WriteString("# HELP crashresist_last_run_wall_seconds Wall-clock duration of the most recent run.\n")
		b.WriteString("# TYPE crashresist_last_run_wall_seconds gauge\n")
		for _, r := range runs {
			fmt.Fprintf(&b, "crashresist_last_run_wall_seconds{%s} %g\n", r.labels, float64(r.wallNS)/1e9)
		}
	}
	if len(faults) > 0 {
		b.WriteString("# HELP crashresist_fault_events_total Kernel -EFAULT completions bucketed by virtual second of the process clock.\n")
		b.WriteString("# TYPE crashresist_fault_events_total counter\n")
		for _, f := range faults {
			fmt.Fprintf(&b, "crashresist_fault_events_total{%s,tick_bucket=\"%d\"} %d\n", f.labels, f.bucket, f.v)
		}
	}
	g.writeDetectFamilies(&b)
	if len(hists) > 0 {
		b.WriteString("# HELP crashresist_stage_latency_ticks Per-job virtual-cost distribution by stage (deterministic ticks).\n")
		b.WriteString("# TYPE crashresist_stage_latency_ticks summary\n")
		for _, h := range hists {
			labels := fmt.Sprintf(`pipeline=%q,target=%q,stage=%q`, h.labels.pipeline, h.labels.target, h.labels.stage)
			for _, q := range []struct {
				q string
				v uint64
			}{{"0.5", h.h.P50}, {"0.95", h.h.P95}, {"0.99", h.h.P99}} {
				fmt.Fprintf(&b, "crashresist_stage_latency_ticks{%s,quantile=%q} %d\n", labels, q.q, q.v)
			}
			fmt.Fprintf(&b, "crashresist_stage_latency_ticks_sum{%s} %d\n", labels, h.h.Sum)
			fmt.Fprintf(&b, "crashresist_stage_latency_ticks_count{%s} %d\n", labels, h.h.Count)
		}
		b.WriteString("# HELP crashresist_stage_latency_ticks_bucket Cumulative per-job virtual-cost buckets by stage.\n")
		b.WriteString("# TYPE crashresist_stage_latency_ticks_bucket counter\n")
		for _, h := range hists {
			labels := fmt.Sprintf(`pipeline=%q,target=%q,stage=%q`, h.labels.pipeline, h.labels.target, h.labels.stage)
			var cum uint64
			for _, bk := range h.h.Buckets {
				cum += bk.N
				fmt.Fprintf(&b, "crashresist_stage_latency_ticks_bucket{%s,le=%q} %d\n", labels, fmt.Sprintf("%d", bk.Hi), cum)
			}
			fmt.Fprintf(&b, "crashresist_stage_latency_ticks_bucket{%s,le=\"+Inf\"} %d\n", labels, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeDetectFamilies renders the detection families from the folded
// sections: trip counts per detector calibration (live stream plus benign
// baseline) and a per-target summary of the primitives' stealth margins
// (the max probe rate evading the default detector). Sections without trips
// still emit a zero-valued detections series per calibration, so a clean
// defended run is distinguishable from an undefended one.
func (g *Registry) writeDetectFamilies(b *strings.Builder) {
	rep := g.detect.Snapshot()
	if len(rep.Sections) == 0 {
		return
	}
	b.WriteString("# HELP crashresist_detections_total Detection-engine trips over the run fault streams, by detector calibration.\n")
	b.WriteString("# TYPE crashresist_detections_total counter\n")
	for _, sec := range rep.Sections {
		trips := make(map[string]uint64, len(sec.Calibrations))
		for _, cal := range sec.Calibrations {
			trips[cal.Name] = 0
		}
		for _, ev := range sec.Events {
			trips[ev.Detector]++
		}
		if sec.Baseline != nil {
			for _, ev := range sec.Baseline.Events {
				trips[ev.Detector]++
			}
		}
		names := make([]string, 0, len(trips))
		for name := range trips {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(b, "crashresist_detections_total{pipeline=%q,target=%q,detector=%q} %d\n",
				sec.Pipeline, sec.Target, name, trips[name])
		}
	}
	headerDone := false
	for _, sec := range rep.Sections {
		var margins []uint64
		var sum uint64
		for _, row := range sec.Rows {
			if row.Undetectable {
				continue
			}
			margins = append(margins, row.StealthMargin)
			sum += row.StealthMargin
		}
		if len(margins) == 0 {
			continue
		}
		if !headerDone {
			b.WriteString("# HELP crashresist_stealth_margin_probes_per_sec Max probe rate (probes per virtual second) at which a primitive evades the default detector; summary over a target's detectable primitives.\n")
			b.WriteString("# TYPE crashresist_stealth_margin_probes_per_sec summary\n")
			headerDone = true
		}
		sort.Slice(margins, func(i, j int) bool { return margins[i] < margins[j] })
		labels := fmt.Sprintf(`pipeline=%q,target=%q`, sec.Pipeline, sec.Target)
		fmt.Fprintf(b, "crashresist_stealth_margin_probes_per_sec{%s,quantile=\"0\"} %d\n", labels, margins[0])
		fmt.Fprintf(b, "crashresist_stealth_margin_probes_per_sec{%s,quantile=\"0.5\"} %d\n", labels, margins[len(margins)/2])
		fmt.Fprintf(b, "crashresist_stealth_margin_probes_per_sec{%s,quantile=\"1\"} %d\n", labels, margins[len(margins)-1])
		fmt.Fprintf(b, "crashresist_stealth_margin_probes_per_sec_sum{%s} %d\n", labels, sum)
		fmt.Fprintf(b, "crashresist_stealth_margin_probes_per_sec_count{%s} %d\n", labels, len(margins))
	}
}

// Handler returns the live serving surface: /metrics (Prometheus text),
// /profile (the attached cost profile: JSON by default,
// ?format=folded for flamegraph.pl input, ?format=top for the ranked
// report), /defense (the folded detectability report: JSON by default,
// ?format=top for the ranked text view), /trace.json (Chrome trace of the
// recent runs), /debug/vars (expvar), /debug/pprof (runtime profiles) and
// /healthz.
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WritePrometheus(w)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		snap := g.Profile().Snapshot() // nil-safe: empty profile serves empty
		switch r.URL.Query().Get("format") {
		case "folded":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteFolded(w)
		case "top":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteTop(w, 0)
		default:
			w.Header().Set("Content-Type", "application/json")
			snap.WriteJSON(w)
		}
	})
	mux.HandleFunc("/defense", func(w http.ResponseWriter, r *http.Request) {
		rep := g.DetectReport()
		switch r.URL.Query().Get("format") {
		case "top":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteTop(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			rep.WriteJSON(w)
		}
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteChromeTrace(w, g.Runs()...)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}
