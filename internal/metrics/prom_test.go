package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"crashresist/internal/prof"
)

// registryWithRun returns a registry holding one traced run.
func registryWithRun(t *testing.T) *Registry {
	t.Helper()
	g := NewRegistry()
	stats := buildTracedRun(t, 2)
	if err := g.Flush(stats); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegistryPrometheusExposition(t *testing.T) {
	g := registryWithRun(t)
	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`crashresist_pool_tasks_total{pipeline="seh",target="iexplore"} 4`,
		`crashresist_runs_total{pipeline="seh",target="iexplore"} 1`,
		`crashresist_last_run_wall_seconds{pipeline="seh",target="iexplore"}`,
		`crashresist_stage_latency_ticks{pipeline="seh",target="iexplore",stage="symex",quantile="0.5"}`,
		`crashresist_stage_latency_ticks{pipeline="seh",target="iexplore",stage="symex",quantile="0.99"}`,
		`crashresist_stage_latency_ticks_sum{pipeline="seh",target="iexplore",stage="symex"} 1000`,
		`crashresist_stage_latency_ticks_count{pipeline="seh",target="iexplore",stage="symex"} 4`,
		`,le="+Inf"} 4`,
		"# TYPE crashresist_runs_total counter",
		"# TYPE crashresist_stage_latency_ticks summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryAccumulatesAcrossRuns(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < 3; i++ {
		if err := g.Flush(buildTracedRun(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `crashresist_runs_total{pipeline="seh",target="iexplore"} 3`) {
		t.Errorf("runs_total not accumulated:\n%s", out)
	}
	if !strings.Contains(out, `crashresist_stage_latency_ticks_count{pipeline="seh",target="iexplore",stage="symex"} 12`) {
		t.Errorf("histogram count not merged across runs:\n%s", out)
	}
	if got := len(g.Runs()); got != 3 {
		t.Errorf("retained runs = %d, want 3", got)
	}
}

func TestRegistryRecentRunRing(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < tracedRuns+5; i++ {
		if err := g.Flush(buildTracedRun(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(g.Runs()); got != tracedRuns {
		t.Errorf("ring holds %d runs, want %d", got, tracedRuns)
	}
}

func TestRegistryExpositionStable(t *testing.T) {
	g := registryWithRun(t)
	var a, b strings.Builder
	if err := g.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("consecutive scrapes of an idle registry differ")
	}
}

func TestRegistryHandlerEndpoints(t *testing.T) {
	g := registryWithRun(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "crashresist_runs_total") {
		t.Errorf("/metrics missing runs_total:\n%s", body)
	}

	body, ctype = get("/trace.json")
	if ctype != "application/json" {
		t.Errorf("/trace.json content type = %q", ctype)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace.json not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("/trace.json missing traceEvents")
	}

	body, _ = get("/debug/vars")
	if !json.Valid([]byte(body)) {
		t.Error("/debug/vars not valid JSON")
	}

	body, _ = get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
}

// TestFaultEventFamily proves the per-process fault-event time series
// reaches the exposition: tick buckets become one labeled series each,
// sorted, and accumulate across runs.
func TestFaultEventFamily(t *testing.T) {
	g := NewRegistry()
	stats := &RunStats{
		Pipeline:    "syscall",
		Target:      "nginx",
		FaultEvents: map[uint64]uint64{3: 2, 1: 5},
	}
	if err := g.Flush(stats); err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(stats); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE crashresist_fault_events_total counter",
		`crashresist_fault_events_total{pipeline="syscall",target="nginx",tick_bucket="1"} 10`,
		`crashresist_fault_events_total{pipeline="syscall",target="nginx",tick_bucket="3"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, `tick_bucket="1"`) > strings.Index(out, `tick_bucket="3"`) {
		t.Error("fault-event series not sorted by bucket")
	}
}

// TestProfileEndpoint exercises the /profile route in all three formats.
func TestProfileEndpoint(t *testing.T) {
	g := registryWithRun(t)
	p := prof.New()
	p.Add(prof.Stack{Pipeline: "seh", Stage: "symex", Target: "ie", Unit: "filter:rejects-av"}, prof.KindSymexSteps, 41)
	g.SetProfile(p)
	if g.Profile() != p {
		t.Fatal("Profile() did not return the attached profile")
	}

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get("/profile")
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/profile not valid JSON: %v\n%s", err, body)
	}
	if doc["schema"] != prof.SchemaV1 {
		t.Errorf("/profile schema = %v", doc["schema"])
	}

	if body = get("/profile?format=folded"); !strings.Contains(body, "symex_steps;seh;symex;ie;filter:rejects-av 41") {
		t.Errorf("folded profile = %q", body)
	}
	if body = get("/profile?format=top"); !strings.Contains(body, "== symex_steps: total 41") {
		t.Errorf("top profile = %q", body)
	}
}

// TestProfileEndpointEmpty: a registry with no profile serves an empty
// document, not an error.
func TestProfileEndpointEmpty(t *testing.T) {
	g := registryWithRun(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/profile without a profile: status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !json.Valid(body) {
		t.Errorf("/profile without a profile not valid JSON: %s", body)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var g *Registry
	if err := g.Flush(&RunStats{}); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := g.Runs(); got != nil {
		t.Errorf("nil registry runs = %v", got)
	}
}

// TestExpvarSinkNonMapCollision is the regression test for the
// double-registration panic: registering a sink whose name collides with an
// already-published non-Map expvar must fall back to a private map instead
// of panicking inside expvar.Publish.
func TestExpvarSinkNonMapCollision(t *testing.T) {
	name := "crashresist_test_collision"
	expvar.NewString(name).Set("occupied")
	s := NewExpvarSink(name) // must not panic
	if err := s.Flush(&RunStats{Counters: map[string]uint64{"probes": 2}}); err != nil {
		t.Fatal(err)
	}
	if got := s.m.Get("probes").String(); got != "2" {
		t.Errorf("fallback map probes = %s, want 2", got)
	}
	// The published variable is untouched.
	if got := expvar.Get(name).String(); got != `"occupied"` {
		t.Errorf("published var = %s, want \"occupied\"", got)
	}
}

// TestExpvarSinkConcurrentRegistration hammers get-or-publish from many
// goroutines; pre-fix this panicked with "Reuse of exported var name".
func TestExpvarSinkConcurrentRegistration(t *testing.T) {
	const name = "crashresist_test_concurrent"
	var wg sync.WaitGroup
	sinks := make([]*ExpvarSink, 16)
	for i := range sinks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sinks[i] = NewExpvarSink(name)
			sinks[i].Flush(&RunStats{Counters: map[string]uint64{"probes": 1}})
		}(i)
	}
	wg.Wait()
	// All sinks share the one published map.
	if got := sinks[0].m.Get("probes").String(); got != "16" {
		t.Errorf("probes = %s, want 16", got)
	}
}
