package metrics

// Chrome trace-event export: renders the span trees of one or more completed
// runs as a trace-event JSON document loadable in Perfetto or
// chrome://tracing. Each run becomes one process (pid); run, pipeline and
// stage spans share thread 1 and every worker lane gets its own thread, so
// the shard/job structure renders as parallel swimlanes.

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one trace-event record. Only the "X" (complete) and "M"
// (metadata) phases are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the document root (the "JSON object format" of the
// trace-event spec).
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// spanTID maps a span to its swimlane: control spans (run, pipeline, stage)
// on thread 1, worker lanes on threads 2+.
func spanTID(s Span) int {
	if s.Shard < 0 {
		return 1
	}
	return s.Shard + 2
}

// WriteChromeTrace writes the runs' span trees to w as Chrome trace-event
// JSON. Runs with no spans contribute only their process-name metadata; a
// nil run is skipped.
func WriteChromeTrace(w io.Writer, runs ...*RunStats) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}}
	for i, r := range runs {
		if r == nil {
			continue
		}
		pid := i + 1
		procName := r.Pipeline
		if r.Target != "" {
			procName += "/" + r.Target
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": procName},
		})
		lanes := map[int]string{1: "pipeline"}
		for _, s := range r.Spans {
			if tid := spanTID(s); lanes[tid] == "" {
				lanes[tid] = fmt.Sprintf("shard-%d", s.Shard)
			}
		}
		for tid := 1; tid <= len(lanes)+1; tid++ {
			name, ok := lanes[tid]
			if !ok {
				continue
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  pid,
				Tid:  tid,
				Args: map[string]any{"name": name},
			})
		}
		for _, s := range r.Spans {
			args := map[string]any{"id": s.ID, "kind": s.Kind}
			if s.Parent != "" {
				args["parent"] = s.Parent
			}
			if s.Job >= 0 {
				args["job"] = s.Job
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Pid:  pid,
				Tid:  spanTID(s),
				Ts:   float64(s.StartNS) / 1e3,
				Dur:  float64(s.DurNS) / 1e3,
				Cat:  s.Kind,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
