package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterNamesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter_") {
			t.Errorf("counter %d has no stable name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
}

func TestCollectorCountsAndStages(t *testing.T) {
	c := NewCollector("seh", "iexplore", 4)
	c.Add(CtrInstructions, 100)
	c.Add(CtrInstructions, 23)
	c.Add(CtrFaults, 7)

	st := c.StartStage("symex", 10)
	for i := 0; i < 10; i++ {
		st.JobDone()
	}
	st.ShardTasks([]int{4, 3, 2, 1})
	st.End()

	stats, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pipeline != "seh" || stats.Target != "iexplore" || stats.Workers != 4 {
		t.Errorf("header = %s/%s/%d", stats.Pipeline, stats.Target, stats.Workers)
	}
	if got := stats.Counter(CtrInstructions); got != 123 {
		t.Errorf("instructions = %d, want 123", got)
	}
	if got := stats.Counter(CtrPoolTasks); got != 10 {
		t.Errorf("pool tasks = %d, want 10", got)
	}
	if len(stats.Stages) != 1 || stats.Stages[0].Name != "symex" || stats.Stages[0].Jobs != 10 {
		t.Errorf("stages = %+v", stats.Stages)
	}
	if !reflect.DeepEqual(stats.Stages[0].ShardTasks, []int{4, 3, 2, 1}) {
		t.Errorf("shard tasks = %v", stats.Stages[0].ShardTasks)
	}
	if !strings.Contains(stats.Format(), "symex") {
		t.Errorf("Format missing stage:\n%s", stats.Format())
	}
}

func TestNilCollectorAndStageAreNoOps(t *testing.T) {
	var c *Collector
	c.Add(CtrFaults, 1)
	c.SetProgress(func(StageEvent) {})
	c.AddSink(NewMemorySink())
	st := c.StartStage("x", 1)
	st.JobDone()
	st.ShardTasks([]int{1})
	st.End()
	if got := c.Snapshot(); got != nil {
		t.Errorf("nil collector snapshot = %+v", got)
	}
	if stats, err := c.Finish(); stats != nil || err != nil {
		t.Errorf("nil collector finish = %+v, %v", stats, err)
	}
}

func TestProgressEventSequence(t *testing.T) {
	c := NewCollector("syscall", "nginx", 1)
	var got []StageEvent
	c.SetProgress(func(ev StageEvent) { got = append(got, ev) })

	st := c.StartStage("validate", 2)
	st.JobDone()
	st.JobDone()
	st.End()

	want := []StageEvent{
		{Pipeline: "syscall", Target: "nginx", Stage: "validate", Kind: StageBegin, Total: 2},
		{Pipeline: "syscall", Target: "nginx", Stage: "validate", Kind: StageProgress, Done: 1, Total: 2},
		{Pipeline: "syscall", Target: "nginx", Stage: "validate", Kind: StageProgress, Done: 2, Total: 2},
		{Pipeline: "syscall", Target: "nginx", Stage: "validate", Kind: StageEnd, Done: 2, Total: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("event sequence:\n got %+v\nwant %+v", got, want)
	}
}

func TestMemorySinkAndJSONSink(t *testing.T) {
	mem := NewMemorySink()
	var buf bytes.Buffer
	c := NewCollector("api", "iexplore", 2)
	c.AddSink(mem)
	c.AddSink(NewJSONSink(&buf))
	c.Add(CtrProbes, 44)
	st := c.StartStage("fuzz", 11)
	st.JobDone()
	st.End()
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}

	if evs := mem.Events(); len(evs) != 3 {
		t.Errorf("memory sink events = %d, want 3 (begin/progress/end)", len(evs))
	}
	runs := mem.Runs()
	if len(runs) != 1 || runs[0].Counter(CtrProbes) != 44 {
		t.Errorf("memory sink runs = %+v", runs)
	}

	var decoded RunStats
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON sink output not parseable: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(&decoded, runs[0]) {
		t.Errorf("JSON round trip:\n got %+v\nwant %+v", &decoded, runs[0])
	}
}

func TestRunStatsJSONRoundTrip(t *testing.T) {
	in := &RunStats{
		Pipeline: "seh",
		Target:   "firefox",
		Workers:  8,
		Counters: map[string]uint64{"instructions": 9, "probes": 2},
		Stages: []StageStats{
			{Name: "browse", Jobs: 0, WallNS: 5},
			{Name: "symex", Jobs: 187, ShardTasks: []int{100, 87}, WallNS: 9},
		},
		WallNS: 77,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out RunStats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&out, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", &out, in)
	}
	b2, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("re-marshal differs:\n%s\n%s", b, b2)
	}
}

func TestExpvarSinkAccumulates(t *testing.T) {
	s := NewExpvarSink("crashresist_test_metrics")
	if err := s.Flush(&RunStats{Counters: map[string]uint64{"probes": 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(&RunStats{Counters: map[string]uint64{"probes": 4}}); err != nil {
		t.Fatal(err)
	}
	// Reuse by name must not panic and must keep accumulating.
	s2 := NewExpvarSink("crashresist_test_metrics")
	if err := s2.Flush(&RunStats{Counters: map[string]uint64{"probes": 1}}); err != nil {
		t.Fatal(err)
	}
	if got := s.m.Get("probes").String(); got != "8" {
		t.Errorf("probes expvar = %s, want 8", got)
	}
	if got := s.m.Get("runs").String(); got != "3" {
		t.Errorf("runs expvar = %s, want 3", got)
	}
}

func TestConcurrentCounterAdds(t *testing.T) {
	c := NewCollector("seh", "", 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(CtrInstructions, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Counter(CtrInstructions); got != 8000 {
		t.Errorf("instructions = %d, want 8000", got)
	}
}
