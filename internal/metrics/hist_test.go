package metrics

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestHistBucketsAndQuantiles(t *testing.T) {
	var h Hist
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 100 → bucket 7 (hi=127).
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s == nil {
		t.Fatal("snapshot nil after observations")
	}
	if s.Count != 5 || s.Sum != 106 || s.Max != 100 {
		t.Errorf("count/sum/max = %d/%d/%d, want 5/106/100", s.Count, s.Sum, s.Max)
	}
	want := []HistBucket{{Hi: 0, N: 1}, {Hi: 1, N: 1}, {Hi: 3, N: 2}, {Hi: 127, N: 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", s.Buckets, want)
	}
	// rank(0.5)=3 lands in the [2,3] bucket; the tail quantiles clamp to the
	// exact max rather than the covering bucket's 127 bound.
	if s.P50 != 3 {
		t.Errorf("p50 = %d, want 3", s.P50)
	}
	if s.P95 != 100 || s.P99 != 100 {
		t.Errorf("p95/p99 = %d/%d, want 100/100", s.P95, s.P99)
	}
	if got := s.Quantile(1.0); got != 100 {
		t.Errorf("quantile(1.0) = %d, want 100", got)
	}
}

func TestHistEmptyAndNil(t *testing.T) {
	var h Hist
	if s := h.Snapshot(); s != nil {
		t.Errorf("empty histogram snapshot = %+v, want nil", s)
	}
	var hp *Hist
	hp.Observe(7) // must not panic
	if s := hp.Snapshot(); s != nil {
		t.Errorf("nil histogram snapshot = %+v, want nil", s)
	}
	var sp *HistSnapshot
	if got := sp.Quantile(0.5); got != 0 {
		t.Errorf("nil snapshot quantile = %d, want 0", got)
	}
	if got := sp.Clone(); got != nil {
		t.Errorf("nil snapshot clone = %+v, want nil", got)
	}
}

func TestHistExtremeBucket(t *testing.T) {
	var h Hist
	h.Observe(math.MaxUint64)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Hi != math.MaxUint64 || s.Buckets[0].N != 1 {
		t.Errorf("buckets = %+v", s.Buckets)
	}
	if s.P99 != math.MaxUint64 {
		t.Errorf("p99 = %d", s.P99)
	}
}

// TestHistConcurrentObserveDeterministic is the core invariance property:
// the same multiset of observations, split across any number of goroutines
// in any interleaving, snapshots identically. This is what keeps stage
// latency histograms byte-identical at 1, 4 and 8 pool workers.
func TestHistConcurrentObserveDeterministic(t *testing.T) {
	values := make([]uint64, 0, 10000)
	v := uint64(1)
	for i := 0; i < 10000; i++ {
		v = v*6364136223846793005 + 1442695040888963407 // LCG, deterministic
		values = append(values, v>>40)
	}

	var want *HistSnapshot
	for _, workers := range []int{1, 4, 8} {
		var h Hist
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(values); i += workers {
					h.Observe(values[i])
				}
			}(w)
		}
		wg.Wait()
		got := h.Snapshot()
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d snapshot differs:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestHistMergeCommutes checks merge order cannot change the result, which
// the Registry relies on when folding runs into per-stage series.
func TestHistMergeCommutes(t *testing.T) {
	var a, b Hist
	for _, v := range []uint64{1, 5, 9, 200} {
		a.Observe(v)
	}
	for _, v := range []uint64{0, 5, 1 << 30} {
		b.Observe(v)
	}
	ab := a.Snapshot().Clone()
	ab.Merge(b.Snapshot())
	ba := b.Snapshot().Clone()
	ba.Merge(a.Snapshot())
	if !reflect.DeepEqual(ab, ba) {
		t.Errorf("merge not commutative:\n a+b %+v\n b+a %+v", ab, ba)
	}
	if ab.Count != 7 {
		t.Errorf("merged count = %d, want 7", ab.Count)
	}
	// Merging the same contents observed into a single histogram must agree.
	var all Hist
	for _, v := range []uint64{1, 5, 9, 200, 0, 5, 1 << 30} {
		all.Observe(v)
	}
	if !reflect.DeepEqual(ab, all.Snapshot()) {
		t.Errorf("merged snapshot != single-histogram snapshot:\n%+v\n%+v", ab, all.Snapshot())
	}
	// Merge(nil) is a no-op.
	before := ab.Clone()
	ab.Merge(nil)
	if !reflect.DeepEqual(ab, before) {
		t.Error("Merge(nil) changed the snapshot")
	}
}

func TestHistCloneIndependent(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Observe(9)
	s := h.Snapshot()
	cp := s.Clone()
	cp.Buckets[0].N = 999
	if s.Buckets[0].N == 999 {
		t.Error("Clone shares bucket storage with the original")
	}
}
