package crashresist

import (
	"fmt"
	"reflect"
	"testing"

	"crashresist/internal/metrics"
)

// stageLatencies extracts the per-stage latency snapshots from a run.
func stageLatencies(t *testing.T, st *RunStats) map[string]*LatencySnapshot {
	t.Helper()
	if st == nil {
		t.Fatal("report carries no RunStats")
	}
	out := map[string]*LatencySnapshot{}
	for _, s := range st.Stages {
		out[s.Name] = s.Latency
	}
	return out
}

// TestLatencyHistogramsWorkerInvariant is the satellite property test: the
// per-stage latency histograms record deterministic virtual costs, so their
// buckets, counts, sums, maxima and quantiles must be identical at 1, 4 and
// 8 workers and across repeat runs of the same seed.
func TestLatencyHistogramsWorkerInvariant(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}

	pipelines := map[string]func(workers int) (*RunStats, error){
		"syscall": func(w int) (*RunStats, error) {
			rep, err := AnalyzeServer(srv, 21, WithWorkers(w))
			if err != nil {
				return nil, err
			}
			return rep.Stats, nil
		},
		"api": func(w int) (*RunStats, error) {
			rep, err := AnalyzeBrowserAPIs(br, 22, WithWorkers(w))
			if err != nil {
				return nil, err
			}
			return rep.Stats, nil
		},
		"seh": func(w int) (*RunStats, error) {
			rep, err := AnalyzeBrowserSEH(br, 23, WithWorkers(w))
			if err != nil {
				return nil, err
			}
			return rep.Stats, nil
		},
	}

	for name, run := range pipelines {
		t.Run(name, func(t *testing.T) {
			var want map[string]*LatencySnapshot
			// Two passes at 1 worker prove repeat-run stability; 4 and 8
			// prove worker-count invariance.
			for _, workers := range []int{1, 1, 4, 8} {
				stats, err := run(workers)
				if err != nil {
					t.Fatal(err)
				}
				got := stageLatencies(t, stats)
				recorded := 0
				for _, l := range got {
					if l != nil {
						recorded++
					}
				}
				if recorded == 0 {
					t.Fatal("no stage recorded a latency histogram")
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d latency histograms differ:\n got %s\nwant %s",
						workers, fmtLatencies(got), fmtLatencies(want))
				}
			}
		})
	}
}

func fmtLatencies(m map[string]*LatencySnapshot) string {
	out := ""
	for name, l := range m {
		out += fmt.Sprintf("\n  %s: %+v", name, l)
	}
	return out
}

// TestProvenanceChains checks the acceptance criterion that every primitive
// appearing in a Table I/II/III report carries a non-empty evidence chain,
// and that the chains key to their rows and follow pipeline stage order.
func TestProvenanceChains(t *testing.T) {
	t.Run("syscall", func(t *testing.T) {
		srv, err := Server("nginx")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeServer(srv, 21)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Findings) == 0 {
			t.Fatal("no findings to carry provenance")
		}
		if len(rep.Provenance) != len(rep.Findings) {
			t.Fatalf("provenance entries = %d, findings = %d", len(rep.Provenance), len(rep.Findings))
		}
		for i, f := range rep.Findings {
			p := rep.Provenance[i]
			wantKey := fmt.Sprintf("%s/arg%d", f.Syscall, f.ArgIndex)
			if p.Primitive != wantKey {
				t.Errorf("provenance[%d] keyed %q, want %q", i, p.Primitive, wantKey)
			}
			checkChain(t, p, "taint", "validate")
		}
	})

	t.Run("api", func(t *testing.T) {
		br, err := IE(SmallBrowserParams())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeBrowserAPIs(br, 22)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Classifications) == 0 {
			t.Fatal("no classifications to carry provenance")
		}
		if len(rep.Provenance) != len(rep.Classifications) {
			t.Fatalf("provenance entries = %d, classifications = %d",
				len(rep.Provenance), len(rep.Classifications))
		}
		for i, cls := range rep.Classifications {
			p := rep.Provenance[i]
			if p.Primitive != cls.API {
				t.Errorf("provenance[%d] keyed %q, want %q", i, p.Primitive, cls.API)
			}
			checkChain(t, p, "fuzz", "classify")
		}
	})

	t.Run("seh", func(t *testing.T) {
		br, err := IE(SmallBrowserParams())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeBrowserSEH(br, 23)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Candidates) == 0 {
			t.Fatal("no candidates to carry provenance")
		}
		if len(rep.Provenance) != len(rep.Candidates) {
			t.Fatalf("provenance entries = %d, candidates = %d", len(rep.Provenance), len(rep.Candidates))
		}
		for i, c := range rep.Candidates {
			p := rep.Provenance[i]
			wantKey := fmt.Sprintf("%s/scope-%d", c.Module, c.Scope)
			if p.Primitive != wantKey {
				t.Errorf("provenance[%d] keyed %q, want %q", i, p.Primitive, wantKey)
			}
			checkChain(t, p, "extract", "crossref")
		}
	})
}

// checkChain asserts a chain is non-empty, every step names its stage, and
// the chain starts/ends with the expected pipeline stages.
func checkChain(t *testing.T, p PrimitiveProvenance, first, last string) {
	t.Helper()
	if len(p.Chain) == 0 {
		t.Errorf("primitive %q has an empty evidence chain", p.Primitive)
		return
	}
	for _, s := range p.Chain {
		if s.Stage == "" {
			t.Errorf("primitive %q has a step without a stage: %+v", p.Primitive, s)
		}
	}
	if got := p.Chain[0].Stage; got != first {
		t.Errorf("primitive %q chain starts at %q, want %q", p.Primitive, got, first)
	}
	if got := p.Chain[len(p.Chain)-1].Stage; got != last {
		t.Errorf("primitive %q chain ends at %q, want %q", p.Primitive, got, last)
	}
}

// TestProvenanceWorkerInvariant pins the chains themselves to the
// determinism contract: byte-identical at any worker count.
func TestProvenanceWorkerInvariant(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	var want []PrimitiveProvenance
	for _, workers := range []int{1, 4, 8} {
		rep, err := AnalyzeBrowserSEH(br, 23, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep.Provenance
			continue
		}
		if !reflect.DeepEqual(rep.Provenance, want) {
			t.Errorf("workers=%d provenance differs:\n got %+v\nwant %+v", workers, rep.Provenance, want)
		}
	}
}

// TestRunSpanTree checks a real pipeline run emits the full span hierarchy
// with resolvable parent links.
func TestRunSpanTree(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeBrowserSEH(br, 23, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st == nil || len(st.Spans) == 0 {
		t.Fatal("run recorded no spans")
	}
	byID := map[string]TraceSpan{}
	kinds := map[string]int{}
	for _, s := range st.Spans {
		byID[s.ID] = s
		kinds[s.Kind]++
	}
	for _, k := range []string{metrics.SpanRun, metrics.SpanPipeline, metrics.SpanStage, metrics.SpanShard, metrics.SpanJob} {
		if kinds[k] == 0 {
			t.Errorf("no %q spans in run tree (kinds: %v)", k, kinds)
		}
	}
	for _, s := range st.Spans {
		if s.Kind == metrics.SpanRun {
			if s.Parent != "" {
				t.Errorf("run span has parent %q", s.Parent)
			}
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %s (%s %s) has dangling parent %s", s.ID, s.Kind, s.Name, s.Parent)
		}
	}
	// One stage span per recorded stage.
	if kinds[metrics.SpanStage] != len(st.Stages) {
		t.Errorf("stage spans = %d, stage stats = %d", kinds[metrics.SpanStage], len(st.Stages))
	}
}
