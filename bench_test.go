package crashresist

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index E1–E11 and ablations A1/A2).
// Each benchmark prints its paper artifact once, so `go test -bench=.`
// output doubles as the reproduction record captured in EXPERIMENTS.md.
//
// Absolute timings are properties of the simulator, not of the authors'
// testbed; the assertions in each benchmark pin the *shape* of the result —
// who wins, by what factor, and where the funnel collapses.

import (
	"fmt"
	"sync"
	"testing"

	"crashresist/internal/discover"
	"crashresist/internal/seh"
	"crashresist/internal/sym"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
)

var benchPrint sync.Map

// printOnce emits a paper artifact a single time per benchmark name.
func printOnce(name, artifact string) {
	if _, loaded := benchPrint.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, artifact)
	}
}

// BenchmarkTableI runs the Linux syscall pipeline over all five servers
// (experiment E1).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		servers, err := Servers()
		if err != nil {
			b.Fatal(err)
		}
		var reports []*SyscallReport
		usable := 0
		falsePos := 0
		for _, srv := range servers {
			rep, err := AnalyzeServer(srv, 42)
			if err != nil {
				b.Fatal(err)
			}
			reports = append(reports, rep)
			usable += len(rep.Usable())
			for _, st := range rep.Status {
				if st == StatusFalsePositive {
					falsePos++
				}
			}
		}
		// Shape: exactly one usable primitive per server, and the
		// Memcached epoll_wait false positive.
		if usable != 5 {
			b.Fatalf("usable primitives = %d, want 5 (one per server)", usable)
		}
		if falsePos != 1 {
			b.Fatalf("false positives = %d, want 1 (memcached epoll_wait)", falsePos)
		}
		printOnce("Table I", FormatTableI(reports))
		b.ReportMetric(float64(usable), "usable")
		b.ReportMetric(float64(falsePos), "false-positives")
	}
}

// BenchmarkTableIDetectOn reruns E1 with the defense observatory watching
// every server analysis. Comparing its ns/op against BenchmarkTableI is the
// observability-cost gate: the streaming detectors and the detectability
// report must stay within noise of the undefended run (the engine only
// folds integer counters the pipelines already produce).
func BenchmarkTableIDetectOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		servers, err := Servers()
		if err != nil {
			b.Fatal(err)
		}
		d := NewDetect()
		usable := 0
		falsePos := 0
		for _, srv := range servers {
			rep, err := AnalyzeServer(srv, 42, WithDetect(d))
			if err != nil {
				b.Fatal(err)
			}
			usable += len(rep.Usable())
			for _, st := range rep.Status {
				if st == StatusFalsePositive {
					falsePos++
				}
			}
		}
		if usable != 5 {
			b.Fatalf("usable primitives = %d, want 5 (one per server)", usable)
		}
		if falsePos != 1 {
			b.Fatalf("false positives = %d, want 1 (memcached epoll_wait)", falsePos)
		}
		rep := d.Snapshot()
		if len(rep.Sections) != len(servers) {
			b.Fatalf("detect sections = %d, want %d", len(rep.Sections), len(servers))
		}
		flagged := 0
		for _, sec := range rep.Sections {
			if sec.Baseline == nil || len(sec.Baseline.Events) != 0 {
				b.Fatalf("%s: benign baseline missing or flagged", sec.Target)
			}
			for _, row := range sec.Rows {
				for _, trip := range row.Trips {
					if trip.Detector == DefaultCalibration().Name {
						flagged++
						break
					}
				}
			}
		}
		if flagged == 0 {
			b.Fatal("no primitive trips the default detector at paper scale")
		}
		b.ReportMetric(float64(usable), "usable")
		b.ReportMetric(float64(flagged), "flagged")
	}
}

// BenchmarkAPIFunnel runs the full-scale Windows API pipeline (E2).
func BenchmarkAPIFunnel(b *testing.B) {
	br, err := IE(PaperBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeBrowserAPIs(br, 42)
		if err != nil {
			b.Fatal(err)
		}
		// The paper's funnel: 20,672 → 11,521 → 400 → 25 → 12 → 0.
		if rep.Total != 20672 || rep.WithPointer != 11521 || rep.CrashResistant != 400 {
			b.Fatalf("funnel head = %d/%d/%d", rep.Total, rep.WithPointer, rep.CrashResistant)
		}
		if rep.OnPath != 25 || rep.JSContext != 12 || rep.Controllable != 0 {
			b.Fatalf("funnel tail = %d/%d/%d", rep.OnPath, rep.JSContext, rep.Controllable)
		}
		printOnce("API funnel", FormatFunnel(rep))
		b.ReportMetric(float64(rep.CrashResistant), "crash-resistant")
		b.ReportMetric(float64(rep.Controllable), "controllable")
	}
}

// benchSEHReport runs the full-scale exception-handler pipeline once per
// call (E3/E4 share this).
func benchSEHReport(b *testing.B, opts ...Option) *SEHReport {
	b.Helper()
	br, err := IE(PaperBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := AnalyzeBrowserSEH(br, 42, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkTableII regenerates the guarded-code-location table (E3).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSEHReport(b)
		row, ok := rep.Row("user32.dll")
		if !ok || row.Handlers != 70 || row.AVHandlers != 63 || row.OnPath != 40 {
			b.Fatalf("user32 row = %+v", row)
		}
		if row, _ := rep.Row("sechost.dll"); row.Handlers != 133 || row.AVHandlers != 11 || row.OnPath != 0 {
			b.Fatalf("sechost row = %+v", row)
		}
		if rep.TotalOnPath != 385 {
			b.Fatalf("on-path total = %d, want 385", rep.TotalOnPath)
		}
		if rep.TriggerEvents != 736512 {
			b.Fatalf("trigger events = %d, want 736512", rep.TriggerEvents)
		}
		printOnce("Table II", FormatTableII(rep, NamedDLLs()))
		b.ReportMetric(float64(rep.TotalOnPath), "on-path")
		b.ReportMetric(float64(rep.TriggerEvents), "triggers")
	}
}

// BenchmarkTableIII regenerates the unique-filter table (E4).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSEHReport(b)
		if rep.TotalModules != 187 {
			b.Fatalf("modules = %d, want 187", rep.TotalModules)
		}
		if rep.TotalHandlers != 6745 || rep.TotalFilters != 5751 {
			b.Fatalf("handlers/filters = %d/%d, want 6745/5751", rep.TotalHandlers, rep.TotalFilters)
		}
		if rep.TotalAVFilters != 808 || rep.TotalAVHandlers != 1797 {
			b.Fatalf("accepting = %d filters / %d handlers, want 808/1797", rep.TotalAVFilters, rep.TotalAVHandlers)
		}
		// Text-anchored per-DLL values: sechost 4 of 126, msvcrt 9 of 129.
		if row, _ := rep.Row("sechost.dll"); row.Filters != 126 || row.AVFilters != 4 {
			b.Fatalf("sechost filters = %d/%d, want 126/4", row.Filters, row.AVFilters)
		}
		if row, _ := rep.Row("msvcrt.dll"); row.Filters != 129 || row.AVFilters != 9 {
			b.Fatalf("msvcrt filters = %d/%d, want 129/9", row.Filters, row.AVFilters)
		}
		printOnce("Table III", FormatTableIII(rep, NamedDLLs()))
		b.ReportMetric(float64(rep.TotalAVFilters), "accepting-filters")
	}
}

// checkTableIII pins Table III's corpus totals for the parallel variants.
func checkTableIII(b *testing.B, rep *SEHReport) {
	b.Helper()
	if rep.TotalModules != 187 || rep.TotalHandlers != 6745 || rep.TotalFilters != 5751 {
		b.Fatalf("corpus = %d modules / %d handlers / %d filters, want 187/6745/5751",
			rep.TotalModules, rep.TotalHandlers, rep.TotalFilters)
	}
	if rep.TotalAVFilters != 808 || rep.TotalAVHandlers != 1797 {
		b.Fatalf("accepting = %d filters / %d handlers, want 808/1797",
			rep.TotalAVFilters, rep.TotalAVHandlers)
	}
}

// BenchmarkTableIIISequential pins the one-worker baseline for the
// sequential-versus-parallel comparison (worker pool pinned to 1; the
// symex cache stays on in both variants).
func BenchmarkTableIIISequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSEHReport(b, WithWorkers(1))
		checkTableIII(b, rep)
		b.ReportMetric(float64(rep.TotalAVFilters), "accepting-filters")
	}
}

// BenchmarkTableIIIParallel fans the per-DLL analysis across GOMAXPROCS
// workers. Compare against BenchmarkTableIIISequential; the ratio is the
// parallel speedup on this host (≥2× on ≥4 cores; on a single-core host
// the two are equal by construction).
func BenchmarkTableIIIParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSEHReport(b, WithWorkers(0))
		checkTableIII(b, rep)
		b.ReportMetric(float64(rep.TotalAVFilters), "accepting-filters")
	}
}

// BenchmarkTableIIIWarmCache measures the warm-path win of the persistent
// analysis cache: one cold run populates a cache directory before the
// timer, then every timed iteration replays the full Table III pipeline
// from disk. Compare against BenchmarkTableIIISequential for the
// cold/warm ratio; the shape assertions prove the cached replay is the
// same result, not a shortcut.
func BenchmarkTableIIIWarmCache(b *testing.B) {
	cache, err := OpenAnalysisCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rep := benchSEHReport(b, WithWorkers(1), WithCache(cache))
	checkTableIII(b, rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := benchSEHReport(b, WithWorkers(1), WithCache(cache))
		checkTableIII(b, rep)
		hits := rep.Stats.Counter(CtrCacheHits)
		if hits < 180 {
			b.Fatalf("warm run hit only %d cached modules", hits)
		}
		b.ReportMetric(float64(hits), "cache-hits")
	}
}

// BenchmarkTableIIIGenLarge runs the exception-handler pipeline over the
// generated large-scale corpus: the full paper population plus 1,870
// synthesized DLLs (≥10× Table III). The generator's declared totals
// stand in for the golden values the hand-built corpus pins, so the
// benchmark still verifies the result it times.
func BenchmarkTableIIIGenLarge(b *testing.B) {
	br, err := IE(LargeBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	gh, gf, _, _, _ := br.Plan.GenTotals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeBrowserSEH(br, 42, WithWorkers(0))
		if err != nil {
			b.Fatal(err)
		}
		if rep.TotalModules != 187+targets.GenDLLsLarge {
			b.Fatalf("modules = %d, want %d", rep.TotalModules, 187+targets.GenDLLsLarge)
		}
		if rep.TotalHandlers != 6745+gh || rep.TotalFilters != 5751+gf {
			b.Fatalf("handlers/filters = %d/%d, want %d/%d",
				rep.TotalHandlers, rep.TotalFilters, 6745+gh, 5751+gf)
		}
		b.ReportMetric(float64(targets.GenDLLsLarge), "gen-modules")
		b.ReportMetric(float64(rep.TriggerEvents), "triggers")
	}
}

// BenchmarkTableIParallel runs the five server pipelines concurrently
// (per-server fan-out plus per-candidate validation fan-out).
func BenchmarkTableIParallel(b *testing.B) {
	servers, err := Servers()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := AnalyzeServers(servers, 42, WithWorkers(0))
		if err != nil {
			b.Fatal(err)
		}
		usable := 0
		for _, rep := range reports {
			usable += len(rep.Usable())
		}
		if usable != 5 {
			b.Fatalf("usable primitives = %d, want 5 (one per server)", usable)
		}
		b.ReportMetric(float64(usable), "usable")
	}
}

// BenchmarkAPIFunnelParallel shards the 11,521-function fuzzing battery
// and the controllability replays across GOMAXPROCS workers.
func BenchmarkAPIFunnelParallel(b *testing.B) {
	br, err := IE(PaperBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeBrowserAPIs(br, 42, WithWorkers(0))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Total != 20672 || rep.WithPointer != 11521 || rep.CrashResistant != 400 {
			b.Fatalf("funnel head = %d/%d/%d", rep.Total, rep.WithPointer, rep.CrashResistant)
		}
		if rep.OnPath != 25 || rep.JSContext != 12 || rep.Controllable != 0 {
			b.Fatalf("funnel tail = %d/%d/%d", rep.OnPath, rep.JSContext, rep.Controllable)
		}
		b.ReportMetric(float64(rep.CrashResistant), "crash-resistant")
	}
}

// BenchmarkFigure1Workflow measures one probe round trip — the paper's
// three-step workflow: overwrite a value, trigger the primitive, infer the
// state (E5).
func BenchmarkFigure1Workflow(b *testing.B) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	env, err := br.NewEnv(42)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Start(); err != nil {
		b.Fatal(err)
	}
	o, err := NewIEOracle(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := o.Probe(0xdead0000 + uint64(i%64)*0x1000)
		if err != nil {
			b.Fatal(err)
		}
		if res != ProbeUnmapped {
			b.Fatalf("probe %d = %v", i, res)
		}
	}
	if env.Proc.State == vm.ProcCrashed {
		b.Fatal("probing crashed the browser")
	}
}

// BenchmarkPoCInternetExplorer locates a hidden region through the §VI-A
// primitive without a single crash (E6).
func BenchmarkPoCInternetExplorer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		br, err := IE(SmallBrowserParams())
		if err != nil {
			b.Fatal(err)
		}
		env, err := br.NewEnv(42 + int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := env.Start(); err != nil {
			b.Fatal(err)
		}
		const size = 64 * 4096
		hidden, err := PlantHiddenRegion(env.Proc, size)
		if err != nil {
			b.Fatal(err)
		}
		o, err := NewIEOracle(env)
		if err != nil {
			b.Fatal(err)
		}
		s := NewScanner(o)
		base, err := s.LocateHiddenRegion(hidden-32*size, hidden+32*size, size)
		if err != nil {
			b.Fatal(err)
		}
		if base != hidden || s.Stats.Crashes != 0 {
			b.Fatalf("found %#x (want %#x), crashes %d", base, hidden, s.Stats.Crashes)
		}
		if i == 0 {
			printOnce("PoC IE11", fmt.Sprintf(
				"located hidden region %#x with %d probes, %d crashes", base, s.Stats.Probes, s.Stats.Crashes))
		}
		b.ReportMetric(float64(s.Stats.Probes), "probes")
	}
}

// BenchmarkPoCFirefox drives the §VI-B background-thread primitive (E6).
func BenchmarkPoCFirefox(b *testing.B) {
	br, err := Firefox(SmallBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	env, err := br.NewEnv(42)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.Start(); err != nil {
		b.Fatal(err)
	}
	o, err := NewFirefoxOracle(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := o.Probe(0xdead0000 + uint64(i%64)*0x1000)
		if err != nil {
			b.Fatal(err)
		}
		if res != ProbeUnmapped {
			b.Fatal("bad verdict")
		}
	}
	if env.Proc.State == vm.ProcCrashed {
		b.Fatal("probing crashed firefox")
	}
}

// BenchmarkPoCNginx runs the §VI-C two-connection probe (E7).
func BenchmarkPoCNginx(b *testing.B) {
	srv, err := Server("nginx")
	if err != nil {
		b.Fatal(err)
	}
	env, err := srv.NewEnv(42)
	if err != nil {
		b.Fatal(err)
	}
	o := NewNginxOracle(env)
	mod := env.Proc.Modules()[0]
	mapped := mod.VA(mod.Image.BSSStart())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target, want := mapped, ProbeMapped
		if i%2 == 1 {
			target, want = 0xdead0000, ProbeUnmapped
		}
		res, err := o.Probe(target)
		if err != nil {
			b.Fatal(err)
		}
		if res != want {
			b.Fatalf("probe %#x = %v, want %v", target, res, want)
		}
	}
	if env.Proc.State == vm.ProcCrashed {
		b.Fatal("probing crashed nginx")
	}
}

// BenchmarkPoCCherokee measures the §VI-D timing side channel: request
// batches take measurably longer with each stalled worker (E8).
func BenchmarkPoCCherokee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv, err := Server("cherokee")
		if err != nil {
			b.Fatal(err)
		}
		env, err := srv.NewEnv(42)
		if err != nil {
			b.Fatal(err)
		}
		o, err := NewCherokeeOracle(env, 30)
		if err != nil {
			b.Fatal(err)
		}
		slow, err := o.MeasureWith(0xdead0000)
		if err != nil {
			b.Fatal(err)
		}
		fast, err := o.MeasureWith(env.Proc.Modules()[0].VA(srv.Image.BSSStart()))
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(slow) / float64(o.Baseline())
		if slow <= o.Baseline() || slow <= fast {
			b.Fatalf("no timing signal: baseline=%d mapped=%d unmapped=%d", o.Baseline(), fast, slow)
		}
		if i == 0 {
			printOnce("PoC Cherokee", fmt.Sprintf(
				"batch of %d requests: baseline %d ticks, mapped probe %d ticks, unmapped probe %d ticks (x%.1f)",
				o.Requests, o.Baseline(), fast, slow, ratio))
		}
		b.ReportMetric(ratio, "slowdown-x")
	}
}

// BenchmarkPriorPrimitives verifies the §VII-A rediscovery cases (E9).
func BenchmarkPriorPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ie, err := IE(SmallBrowserParams())
		if err != nil {
			b.Fatal(err)
		}
		ieRep, err := AnalyzeBrowserSEH(ie, 42)
		if err != nil {
			b.Fatal(err)
		}
		iePW := PriorWork(ieRep)
		ff, err := Firefox(SmallBrowserParams())
		if err != nil {
			b.Fatal(err)
		}
		ffRep, err := AnalyzeBrowserSEH(ff, 42)
		if err != nil {
			b.Fatal(err)
		}
		ffPW := PriorWork(ffRep)
		if !iePW.IECatchAllFound || !iePW.IEPostUpdateNeedsManual {
			b.Fatalf("IE prior work = %+v", iePW)
		}
		if !ffPW.FirefoxVEHMissed {
			b.Fatalf("Firefox prior work = %+v", ffPW)
		}
		// The §VII-A extension (implemented future work): static VEH
		// registration scanning recovers the handler the scope-table
		// pipeline misses.
		if !ffPW.FirefoxVEHFoundByExtension {
			b.Fatalf("VEH extension did not recover the handler: %+v", ffPW)
		}
		printOnce("Prior primitives (§VII-A)", fmt.Sprintf(
			"IE MUTX catch-all rediscovered: %v\nIE post-update filter needs manual vetting: %v\nFirefox runtime VEH invisible to scope tables: %v\nFirefox VEH recovered by the registration-scan extension: %v",
			iePW.IECatchAllFound, iePW.IEPostUpdateNeedsManual, ffPW.FirefoxVEHMissed, ffPW.FirefoxVEHFoundByExtension))
	}
}

// BenchmarkRateDetection measures the §VII-C fault rates: browsing ≈ 0,
// asm.js bursts below threshold, scanning orders of magnitude above (E10).
func BenchmarkRateDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		br, err := Firefox(SmallBrowserParams())
		if err != nil {
			b.Fatal(err)
		}
		env, err := br.NewEnv(42)
		if err != nil {
			b.Fatal(err)
		}
		rec := NewExceptionRecorder()
		rec.Attach(env.Proc)
		if err := env.Start(); err != nil {
			b.Fatal(err)
		}
		det := DefaultRateDetector()

		if err := env.Browse(); err != nil {
			b.Fatal(err)
		}
		browsePeak := det.Peak(rec.Exceptions())

		rec.ResetExceptions()
		if _, err := env.Call("xul.dll", "asmjs_run", 20); err != nil {
			b.Fatal(err)
		}
		asmPeak := det.Peak(rec.Exceptions())

		rec.ResetExceptions()
		o, err := NewFirefoxOracle(env)
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < 200; p++ {
			if _, err := o.Probe(0xdead0000 + uint64(p)*0x1000); err != nil {
				b.Fatal(err)
			}
		}
		scanPeak := det.Peak(rec.Exceptions())

		if browsePeak != 0 {
			b.Fatalf("browse peak = %d, want 0", browsePeak)
		}
		if asmPeak == 0 || asmPeak > det.Threshold {
			b.Fatalf("asm.js peak = %d, want burst below threshold %d", asmPeak, det.Threshold)
		}
		if scanPeak <= det.Threshold || scanPeak <= asmPeak*3 {
			b.Fatalf("scan peak = %d, not clearly above asm.js %d", scanPeak, asmPeak)
		}
		printOnce("Rate detection (§VII-C)", fmt.Sprintf(
			"AV peak per window: browsing=%d, asm.js=%d, scanning=%d (threshold %d)",
			browsePeak, asmPeak, scanPeak, det.Threshold))
		b.ReportMetric(float64(scanPeak), "scan-peak")
		b.ReportMetric(float64(asmPeak), "asmjs-peak")
	}
}

// BenchmarkMappedOnlyPolicy shows the §VII-C policy killing the scan at its
// first unmapped probe while guard-page optimizations keep working (E11).
func BenchmarkMappedOnlyPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		br, err := Firefox(SmallBrowserParams())
		if err != nil {
			b.Fatal(err)
		}
		env, err := br.NewEnv(42)
		if err != nil {
			b.Fatal(err)
		}
		env.Proc.Policy = MappedOnlyPolicy()
		if err := env.Start(); err != nil {
			b.Fatal(err)
		}
		if _, err := env.Call("xul.dll", "asmjs_run", 10); err != nil {
			b.Fatalf("guard-page faults broke under policy: %v", err)
		}
		o, err := NewFirefoxOracle(env)
		if err != nil {
			b.Fatal(err)
		}
		o.Probe(0xdead0000)
		if env.Proc.State != vm.ProcCrashed {
			b.Fatal("scan survived the mapped-only policy")
		}
		printOnce("Mapped-only policy (§VII-C)",
			"asm.js guard faults survive; the first unmapped probe terminates the process")
	}
}

// BenchmarkAblationSymexVsHeuristic compares symbolic execution against the
// naive catch-all-only heuristic for filter triage (A1).
func BenchmarkAblationSymexVsHeuristic(b *testing.B) {
	br, err := IE(PaperBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	env, err := br.NewEnv(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec := sym.NewExecutor(env.Proc)
		var filters, accepting, catchAllOnly int
		for _, mod := range env.Proc.Modules() {
			inv := seh.Extract(mod)
			catchAllOnly += inv.CatchAllHandlers
			for _, f := range inv.Filters {
				filters++
				if exec.AnalyzeFilter(mod.VA(f)).Verdict == sym.VerdictAccepts {
					accepting++
				}
			}
		}
		// Symbolic execution keeps 808 of 5,751 filters; the catch-all
		// heuristic alone would surface only the handful of catch-all
		// scopes and miss every code-checking filter.
		if filters != 5751 || accepting != 808 {
			b.Fatalf("symex = %d/%d, want 808/5751", accepting, filters)
		}
		if catchAllOnly >= accepting {
			b.Fatalf("catch-all heuristic (%d) should find far less than symex (%d)", catchAllOnly, accepting)
		}
		printOnce("Ablation A1 (symex vs heuristic)", fmt.Sprintf(
			"filters: %d total → %d accept AV via symex (%.1f%% dropped); catch-all-only heuristic finds %d",
			filters, accepting, 100*float64(filters-accepting)/float64(filters), catchAllOnly))
		b.ReportMetric(float64(accepting), "symex-accepting")
		b.ReportMetric(float64(catchAllOnly), "heuristic-catchall")
	}
}

// BenchmarkAblationTaintVsBaseline compares taint-guided candidate selection
// against validating every observed EFAULT-capable syscall (A2).
func BenchmarkAblationTaintVsBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		servers, err := Servers()
		if err != nil {
			b.Fatal(err)
		}
		var taintGuided, baseline int
		for _, srv := range servers {
			rep, err := AnalyzeServer(srv, 42)
			if err != nil {
				b.Fatal(err)
			}
			taintGuided += len(rep.Findings)
			for _, st := range rep.Status {
				if st != discover.StatusNotObserved {
					baseline++
				}
			}
		}
		if taintGuided >= baseline {
			b.Fatalf("taint-guided validations (%d) should be below all-observed baseline (%d)",
				taintGuided, baseline)
		}
		printOnce("Ablation A2 (taint vs baseline)", fmt.Sprintf(
			"validation replays needed: taint-guided %d vs observed-syscall baseline %d",
			taintGuided, baseline))
		b.ReportMetric(float64(taintGuided), "taint-guided")
		b.ReportMetric(float64(baseline), "baseline")
	}
}

// BenchmarkBrowseWorkload measures raw browse throughput with coverage
// instrumentation — the cost backdrop for the SEH pipeline.
func BenchmarkBrowseWorkload(b *testing.B) {
	br, err := IE(PaperBrowserParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := br.NewEnv(42)
		if err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder()
		rec.EnableCoverage()
		rec.Attach(env.Proc)
		if err := env.Start(); err != nil {
			b.Fatal(err)
		}
		if err := env.Browse(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(env.Proc.Stats.Instructions), "instructions")
	}
}
