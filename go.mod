module crashresist

go 1.22
