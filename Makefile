GO ?= go

.PHONY: test race fuzz-short bench golden-update

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-short:
	$(GO) test -fuzz=FuzzDecodeRoundTrip -fuzztime=30s ./internal/isa
	$(GO) test -fuzz=FuzzImageParse -fuzztime=30s ./internal/bin

bench:
	$(GO) test -bench=. -benchtime=1x

golden-update:
	$(GO) test ./cmd/crtables -run TestGolden -update
