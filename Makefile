GO ?= go

.PHONY: ci test race fuzz-short bench golden-update

# ci is the full gate run by .github/workflows/ci.yml.
ci:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-short:
	$(GO) test -fuzz=FuzzDecodeRoundTrip -fuzztime=30s ./internal/isa
	$(GO) test -fuzz=FuzzImageParse -fuzztime=30s ./internal/bin

bench:
	$(GO) test -bench=. -benchtime=1x

golden-update:
	$(GO) test ./cmd/crtables -run TestGolden -update
