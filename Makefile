GO ?= go

.PHONY: ci test race fuzz-short chaos scale bench bench-gate golden-update

# ci is the full gate run by .github/workflows/ci.yml.
ci:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-short:
	$(GO) test -fuzz=FuzzDecodeRoundTrip -fuzztime=30s ./internal/isa
	$(GO) test -fuzz=FuzzImageParse -fuzztime=30s ./internal/bin
	$(GO) test -fuzz=FuzzScopeTableParse -fuzztime=30s ./internal/seh
	$(GO) test -fuzz=FuzzCacheEntryDecode -fuzztime=30s ./internal/cas
	$(GO) test -fuzz=FuzzGenDLL -fuzztime=30s ./internal/targets
	$(GO) test -fuzz=FuzzGenServer -fuzztime=30s ./internal/targets
	$(GO) test -fuzz=FuzzRateDetector -fuzztime=30s ./internal/defense

# chaos runs the full paper-scale fault-injection sweep under the race
# detector; tier-1 (`make test`/`make race`) only runs the trimmed sweep.
chaos:
	CHAOS_SCALE=paper $(GO) test -race -run 'TestChaos|TestStageTimeout' -v .

# scale runs the full large-scale property harness (paper corpus + 1,870
# generated DLLs, 60-server generated fleet) under the race detector;
# tier-1 runs the same properties on a trimmed generated population.
# CRASHRESIST_SCALE_N=<n> overrides the generated DLL count directly.
scale:
	CRASHRESIST_SCALE=large $(GO) test -race -run 'TestScale' -v .

# bench emits benchstat-comparable text (bench.txt — feed two of them to
# `benchstat old.txt new.txt`) and a machine-readable BENCH_PR9.json via
# tools/benchjson. BENCH_COUNT > 1 gives benchstat variance to work with.
BENCH_COUNT ?= 1
bench:
	$(GO) test -bench=. -benchtime=1x -count=$(BENCH_COUNT) ./... | tee bench.txt
	$(GO) run ./tools/benchjson < bench.txt > BENCH_PR9.json
	@echo "wrote bench.txt and BENCH_PR9.json"

# bench-gate reruns the benchmarks and fails when any ns/op regressed past
# BENCH_TOLERANCE percent against the committed baseline manifest.
BENCH_TOLERANCE ?= 200
bench-gate:
	$(GO) test -bench=. -benchtime=1x -count=1 ./... | tee bench.txt
	$(GO) run ./tools/benchjson -compare BENCH_PR9.json -tolerance $(BENCH_TOLERANCE) < bench.txt

golden-update:
	$(GO) test ./cmd/crtables -run TestGolden -update
