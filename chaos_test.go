package crashresist

// Chaos harness for the fault-injection tentpole: seeded fault plans are
// swept over pipeline runs at several worker counts, asserting the
// resilience contract end to end:
//
//   - no run panics or aborts — degraded jobs are recorded, not fatal;
//   - for a fixed chaos seed the report (including the Degraded list) is
//     byte-identical at 1, 4 and 8 workers and across repeated runs;
//   - with injection off, reports are byte-identical to a plain run (the
//     goldens under cmd/crtables pin that against checked-in bytes, so
//     the clean sweeps here only run in the full chaos gate).
//
// The default `go test` run keeps the sweep small so tier-1 stays fast:
// one seed, small browser scale. `make chaos` (the dedicated CI job) sets
// CHAOS_SCALE=paper for the full paper-scale sweep with the complete seed
// set under the race detector.
//
// Reports are compared after stripping Stats: wall-clock timings and
// scheduling-dependent cache totals live there by design.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// chaosPaper selects the full paper-scale sweep (set by `make chaos`).
var chaosPaper = os.Getenv("CHAOS_SCALE") == "paper"

// chaosWorkerCounts are the fan-outs every sweep runs at.
var chaosWorkerCounts = []int{1, 4, 8}

// chaosSeedSet returns the fault-plan seeds of one sweep.
func chaosSeedSet() []int64 {
	if chaosPaper {
		return []int64{1, 2}
	}
	return []int64{1}
}

func chaosBrowserScale(t *testing.T) BrowserParams {
	if chaosPaper && !testing.Short() {
		return PaperBrowserParams()
	}
	return SmallBrowserParams()
}

// normalize strips the Stats pointer from a report and returns its
// canonical JSON, the byte-level identity used across worker counts.
func normalize(t *testing.T, report any) string {
	t.Helper()
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	delete(m, "stats")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-marshal report: %v", err)
	}
	return string(out)
}

// sweep runs one analysis at every worker count (twice at the first count,
// to catch run-to-run nondeterminism) and asserts all normalized reports
// are identical.
func sweep(t *testing.T, name string, analyze func(workers int) (any, error)) {
	t.Helper()
	var want string
	for i, workers := range append([]int{chaosWorkerCounts[0]}, chaosWorkerCounts...) {
		rep, err := analyze(workers)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, workers, err)
		}
		got := normalize(t, rep)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s workers=%d: report differs from workers=%d baseline\n got: %.400s\nwant: %.400s",
				name, workers, chaosWorkerCounts[0], got, want)
		}
	}
}

func chaosOpts(seed int64, workers int) []Option {
	return []Option{
		WithWorkers(workers),
		WithFaultPlan(DefaultFaultPlan(seed)),
		WithRetry(2),
	}
}

// TestChaosSyscallPipeline sweeps seeded fault plans over the Table I
// pipeline for every server.
func TestChaosSyscallPipeline(t *testing.T) {
	servers, err := Servers()
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		srv := srv
		if chaosPaper {
			sweep(t, srv.Name+"/clean", func(workers int) (any, error) {
				return AnalyzeServer(srv, 42, WithWorkers(workers))
			})
		}
		for _, seed := range chaosSeedSet() {
			seed := seed
			sweep(t, fmt.Sprintf("%s/chaos-%d", srv.Name, seed), func(workers int) (any, error) {
				return AnalyzeServer(srv, 42, chaosOpts(seed, workers)...)
			})
		}
	}
}

// TestChaosSEHPipeline sweeps seeded fault plans over the Tables II/III
// pipeline.
func TestChaosSEHPipeline(t *testing.T) {
	br, err := IE(chaosBrowserScale(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeedSet() {
		seed := seed
		sweep(t, fmt.Sprintf("seh/chaos-%d", seed), func(workers int) (any, error) {
			return AnalyzeBrowserSEH(br, 42, chaosOpts(seed, workers)...)
		})
	}
	if chaosPaper {
		sweep(t, "seh/clean", func(workers int) (any, error) {
			return AnalyzeBrowserSEH(br, 42, WithWorkers(workers))
		})
	}
}

// TestChaosAPIPipeline sweeps seeded fault plans over the §V-B funnel.
func TestChaosAPIPipeline(t *testing.T) {
	br, err := IE(chaosBrowserScale(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeedSet() {
		seed := seed
		sweep(t, fmt.Sprintf("api/chaos-%d", seed), func(workers int) (any, error) {
			return AnalyzeBrowserAPIs(br, 42, chaosOpts(seed, workers)...)
		})
	}
	if chaosPaper {
		sweep(t, "api/clean", func(workers int) (any, error) {
			return AnalyzeBrowserAPIs(br, 42, WithWorkers(workers))
		})
	}
}

// TestChaosCountersSurface checks that a chaos run accounts for its
// injections in RunStats: with the high-rate pool site of the default
// plan, the validation fan-out draws at least one fault, and every
// degraded record corresponds to a counted degradation.
func TestChaosCountersSurface(t *testing.T) {
	servers, err := Servers()
	if err != nil {
		t.Fatal(err)
	}
	var injected, degraded uint64
	var records int
	for _, seed := range chaosSeedSet() {
		for _, srv := range servers {
			rep, err := AnalyzeServer(srv, 42, chaosOpts(seed, 4)...)
			if err != nil {
				t.Fatalf("%s: %v", srv.Name, err)
			}
			if rep.Stats == nil {
				t.Fatalf("%s: no RunStats on chaos run", srv.Name)
			}
			injected += rep.Stats.Counter(CtrFaultsInjected)
			degraded += rep.Stats.Counter(CtrDegraded)
			records += len(rep.Degraded)
			if uint64(len(rep.Degraded)) != rep.Stats.Counter(CtrDegraded) {
				t.Errorf("%s: %d degraded records vs counter %d",
					srv.Name, len(rep.Degraded), rep.Stats.Counter(CtrDegraded))
			}
		}
	}
	if injected == 0 {
		t.Error("no faults injected across the chaos sweep; plan wiring broken")
	}
	t.Logf("chaos sweep: %d faults injected, %d jobs degraded (%d records)", injected, degraded, records)
}

// TestStageTimeout checks WithStageTimeout: an already-expired budget
// cancels the fanned-out stages and surfaces as a context error.
func TestStageTimeout(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	_, err = AnalyzeServer(srv, 42, WithWorkers(2), WithStageTimeout(1))
	if err == nil {
		t.Fatal("expired stage timeout did not fail the run")
	}
}
